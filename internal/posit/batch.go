package posit

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Batch conversion between IEEE-754 binary32 streams and 32-bit posit
// streams. This is the operation the paper performs on every SDRBench input
// (via cppposit) before handing the bytes to the compressors.
//
// Both representations are serialized little-endian, one 32-bit word per
// value, so a converted file has exactly the size of its source.

// ConvertStats summarizes a float32 -> posit -> float32 roundtrip, the
// paper's Section 4.2 precision metric.
type ConvertStats struct {
	Total   int     // number of values converted
	Exact   int     // values whose roundtrip reproduces the input bit-for-bit
	MaxAbsE float64 // largest absolute roundtrip error over finite values
}

// PrecisePct returns the percentage of exactly preserved values.
func (s ConvertStats) PrecisePct() float64 {
	if s.Total == 0 {
		return 100
	}
	return 100 * float64(s.Exact) / float64(s.Total)
}

// FromFloat32Slice converts src into posit bit patterns under c.
// dst must have len(src) capacity; if nil a new slice is allocated.
func (c Config) FromFloat32Slice(dst []uint32, src []float32) []uint32 {
	return c.FromFloat32SliceWorkers(dst, src, 0)
}

// FromFloat32SliceWorkers is FromFloat32Slice with an explicit worker
// count for this call only; n <= 0 falls back to the SetBatchWorkers /
// GOMAXPROCS default. Serving paths use the per-call form so one request's
// knob cannot perturb another's.
func (c Config) FromFloat32SliceWorkers(dst []uint32, src []float32, n int) []uint32 {
	if dst == nil {
		dst = make([]uint32, len(src))
	}
	parallelRangeN(len(src), n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = uint32(c.FromFloat32(src[i]))
		}
	})
	return dst[:len(src)]
}

// ToFloat32Slice converts posit bit patterns back to float32.
func (c Config) ToFloat32Slice(dst []float32, src []uint32) []float32 {
	return c.ToFloat32SliceWorkers(dst, src, 0)
}

// ToFloat32SliceWorkers is ToFloat32Slice with a per-call worker count
// (n <= 0 selects the package default).
func (c Config) ToFloat32SliceWorkers(dst []float32, src []uint32, n int) []float32 {
	if dst == nil {
		dst = make([]float32, len(src))
	}
	if c.kernelOK() {
		parallelRangeN(len(src), n, func(lo, hi int) {
			c.decode32Batch(dst[lo:hi], src[lo:hi])
		})
		return dst[:len(src)]
	}
	parallelRangeN(len(src), n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = c.ToFloat32(uint64(src[i]))
		}
	})
	return dst[:len(src)]
}

// RoundtripStats converts src to posits and back, reporting how many values
// survive exactly. NaN inputs count as exact when the roundtrip returns any
// NaN (posits collapse all NaNs to NaR).
func (c Config) RoundtripStats(src []float32) ConvertStats {
	return c.RoundtripStatsWorkers(src, 0)
}

// RoundtripStatsWorkers is RoundtripStats with a per-call worker count
// (nWorkers <= 0 selects the package default).
func (c Config) RoundtripStatsWorkers(src []float32, nWorkers int) ConvertStats {
	nw := clampWorkers(nWorkers, len(src))
	partial := make([]ConvertStats, nw)
	var wg sync.WaitGroup
	chunk := (len(src) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(src) {
			hi = len(src)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			st := &partial[w]
			for i := lo; i < hi; i++ {
				f := src[i]
				back := c.ToFloat32(uint64(c.FromFloat32(f)))
				st.Total++
				switch {
				case math.IsNaN(float64(f)):
					if math.IsNaN(float64(back)) {
						st.Exact++
					}
				case math.Float32bits(f) == math.Float32bits(back):
					st.Exact++
				default:
					if e := math.Abs(float64(back) - float64(f)); e > st.MaxAbsE {
						st.MaxAbsE = e
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var total ConvertStats
	for _, p := range partial {
		total.Total += p.Total
		total.Exact += p.Exact
		if p.MaxAbsE > total.MaxAbsE {
			total.MaxAbsE = p.MaxAbsE
		}
	}
	return total
}

// EncodeFloat32LE serializes float32 values little-endian (.f32 layout).
func EncodeFloat32LE(src []float32) []byte {
	out := make([]byte, 4*len(src))
	for i, f := range src {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(f))
	}
	return out
}

// DecodeFloat32LE parses a little-endian .f32 byte stream.
func DecodeFloat32LE(p []byte) ([]float32, error) {
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("posit: byte length %d not a multiple of 4", len(p))
	}
	out := make([]float32, len(p)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return out, nil
}

// EncodeWordsLE serializes 32-bit words (posit patterns) little-endian.
func EncodeWordsLE(src []uint32) []byte {
	out := make([]byte, 4*len(src))
	for i, w := range src {
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	return out
}

// DecodeWordsLE parses a little-endian 32-bit word stream.
func DecodeWordsLE(p []byte) ([]uint32, error) {
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("posit: byte length %d not a multiple of 4", len(p))
	}
	out := make([]uint32, len(p)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return out, nil
}

// ConvertFileF32ToPosit converts a raw .f32 byte stream into the
// equal-sized posit<32,es> byte stream, returning roundtrip statistics.
func (c Config) ConvertFileF32ToPosit(f32 []byte) ([]byte, ConvertStats, error) {
	if c.N != 32 {
		return nil, ConvertStats{}, fmt.Errorf("posit: file conversion requires a 32-bit config, got %v", c)
	}
	floats, err := DecodeFloat32LE(f32)
	if err != nil {
		return nil, ConvertStats{}, err
	}
	words := c.FromFloat32Slice(nil, floats)
	stats := c.RoundtripStats(floats)
	return EncodeWordsLE(words), stats, nil
}

// batchWorkers, when positive, caps the goroutine count of the batch
// converters; zero means "use GOMAXPROCS".
var batchWorkers atomic.Int32

// SetBatchWorkers caps the worker count used by the slice converters and
// RoundtripStats (the CLIs' -p flag lands here). n <= 0 restores the
// GOMAXPROCS default. Safe to call concurrently with conversions; running
// conversions keep the count they started with.
func SetBatchWorkers(n int) {
	if n < 0 {
		n = 0
	}
	batchWorkers.Store(int32(n))
}

// workers picks a worker count for n items from the package default.
func workers(n int) int { return clampWorkers(0, n) }

// clampWorkers resolves an explicit per-call worker count (or the package
// default when nw <= 0) and clamps it to [1, n].
func clampWorkers(nw, n int) int {
	if nw <= 0 {
		nw = int(batchWorkers.Load())
	}
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > n {
		nw = n
	}
	if nw < 1 {
		nw = 1
	}
	return nw
}

// parallelRange splits [0,n) across GOMAXPROCS goroutines. Each worker
// receives a contiguous half-open interval; results must be written to
// per-index slots so output is deterministic.
func parallelRange(n int, fn func(lo, hi int)) { parallelRangeN(n, 0, fn) }

// parallelRangeN is parallelRange with an explicit worker count (nWorkers
// <= 0 selects the package default).
func parallelRangeN(n, nWorkers int, fn func(lo, hi int)) {
	nw := clampWorkers(nWorkers, n)
	if nw == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
