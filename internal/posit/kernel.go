package posit

import (
	"math"
	"math/bits"
)

// Branch-free batch decoding of posit32 bit patterns.
//
// The generic Decode path classifies specials and sizes the regime,
// exponent, and fraction fields with data-dependent branches; the hot batch
// converters pay those mispredictions once per value. decode32 computes the
// identical float64 bit pattern with arithmetic masks instead: the regime
// run length comes from one LeadingZeros64 after XOR-splatting the first
// body bit, field widths use branch-free min, and the zero/NaR specials are
// folded in with masked selects. Eight independent decodes are unrolled per
// loop iteration so the out-of-order core can overlap them.

// kernelOK reports whether the batch kernel covers configuration c: 32-bit
// posits whose scale range stays inside binary64's normal-number exponents
// (|scale| <= 30<<es, which for es <= 5 is at most 960 < 1022). Every such
// posit is exactly one normal binary64 value, so the kernel can assemble
// the float bits directly.
func (c Config) kernelOK() bool { return c.N == 32 && c.ES <= 5 }

// kernelNaN must match the bits math.NaN() returns so the kernel path is
// indistinguishable from ToFloat64's NaR handling.
var kernelNaN = math.Float64bits(math.NaN())

// decode32 converts one posit32 bit pattern to the bits of its exact
// float64 value, with no branches. Requires c.kernelOK().
func (c Config) decode32(p uint32) uint64 {
	es := uint64(c.ES)
	sgn := uint64(p) >> 31
	// Two's-complement magnitude: negate exactly when the sign bit is set.
	mag := ((uint64(p) ^ (0 - sgn)) + sgn) & 0xFFFFFFFF
	// Left-align the 31 body bits at bit 63.
	x := (mag & 0x7FFFFFFF) << 33
	first := x >> 63
	// XOR with a splat of the first bit turns "count leading copies of the
	// first bit" into a plain count of leading zeros.
	m := uint64(bits.LeadingZeros64(x ^ (0 - first)))
	// Clamp the run to the 31 body bits (an all-zero body counts 64).
	d := int64(m) - 31
	m -= uint64(d) &^ uint64(d>>63) // m = min(m, 31)
	// Regime value: k = m-1 for a run of ones, -m for a run of zeros.
	k := int64(first)*(2*int64(m)-1) - int64(m)
	// The terminating opposite bit is consumed only when the run stops
	// before the end of the body.
	consumed := m + (uint64((int64(m)-31)>>63) & 1)
	rem := 31 - consumed
	// Exponent width: min(es, rem); truncated low bits read as zero.
	de := int64(es) - int64(rem)
	eb := es - (uint64(de) &^ uint64(de>>63))
	e := ((x << consumed) >> (64 - eb)) << (es - eb) // >>64 == 0 when eb == 0
	scale := k<<es + int64(e)
	fb := rem - eb
	frac := (x << (consumed + eb)) >> (64 - fb) // >>64 == 0 when fb == 0
	// Assemble binary64: the hidden bit contributes the leading 1 of a
	// normal mantissa, so the exponent is exactly scale (always in normal
	// range under kernelOK) and the fraction left-justifies into 52 bits.
	fbits := sgn<<63 | uint64(scale+1023)<<52 | frac<<(52-fb)
	// Masked selects for the two specials. (v | -v) >> 63 is 1 iff v != 0.
	nz := uint64(p)
	fbits &= 0 - ((nz | (0 - nz)) >> 63) // zero pattern -> +0
	dn := uint64(p) ^ 0x80000000
	nar := ((dn|(0-dn))>>63 - 1) // all ones iff p == NaR
	return fbits&^nar | kernelNaN&nar
}

// decode32Batch fills dst with the float32 values of the posit32 patterns
// in src. The eight-wide unroll carries no cross-iteration state, so the
// decodes pipeline freely. Requires c.kernelOK() and len(dst) >= len(src).
func (c Config) decode32Batch(dst []float32, src []uint32) {
	i := 0
	for ; i+8 <= len(src); i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = float32(math.Float64frombits(c.decode32(s[0])))
		d[1] = float32(math.Float64frombits(c.decode32(s[1])))
		d[2] = float32(math.Float64frombits(c.decode32(s[2])))
		d[3] = float32(math.Float64frombits(c.decode32(s[3])))
		d[4] = float32(math.Float64frombits(c.decode32(s[4])))
		d[5] = float32(math.Float64frombits(c.decode32(s[5])))
		d[6] = float32(math.Float64frombits(c.decode32(s[6])))
		d[7] = float32(math.Float64frombits(c.decode32(s[7])))
	}
	for ; i < len(src); i++ {
		dst[i] = float32(math.Float64frombits(c.decode32(src[i])))
	}
}
