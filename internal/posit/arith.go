package posit

import (
	"math"
	"math/bits"
)

// Arithmetic on posit bit patterns. All operations are correctly rounded
// (round-to-nearest-even on the posit pattern, saturating): intermediates
// are kept exact in 128 bits and rounded once by Encode.
//
// NaR is absorbing: any operation with a NaR operand yields NaR, as does
// any operation whose mathematical result is undefined (x/0, sqrt of a
// negative value).

const workFracBits = 61 // working fraction precision: hidden bit at bit 61

// widen normalizes decoded parts to the working precision.
func widen(pt Parts) Parts {
	pt.Frac <<= workFracBits - pt.FracBits
	pt.FracBits = workFracBits
	return pt
}

// normalize128 builds Parts from an exact 128-bit magnitude (hi,lo) scaled
// by 2^baseScale, reduced to workFracBits with a sticky flag.
func normalize128(neg bool, hi, lo uint64, baseScale int) (Parts, bool) {
	if hi == 0 && lo == 0 {
		return Parts{}, false
	}
	var top int // index of the most significant set bit
	if hi != 0 {
		top = 127 - bits.LeadingZeros64(hi)
	} else {
		top = 63 - bits.LeadingZeros64(lo)
	}
	scale := baseScale + top
	var frac uint64
	sticky := false
	if top <= workFracBits {
		frac = lo << (workFracBits - uint(top))
	} else {
		drop := uint(top) - workFracBits
		frac = extract128(hi, lo, drop, 64)
		sticky = lowNonzero128(hi, lo, drop)
	}
	return Parts{Neg: neg, Scale: scale, Frac: frac, FracBits: workFracBits}, sticky
}

// Add returns the correctly rounded sum a+b.
func (c Config) Add(a, b uint64) uint64 {
	pa, sa := c.Decode(a)
	pb, sb := c.Decode(b)
	if sa == IsNaR || sb == IsNaR {
		return c.NaR()
	}
	if sa == IsZero {
		return b & c.mask()
	}
	if sb == IsZero {
		return a & c.mask()
	}
	pa, pb = widen(pa), widen(pb)
	if pa.Scale < pb.Scale || (pa.Scale == pb.Scale && pa.Frac < pb.Frac) {
		pa, pb = pb, pa // pa now has the larger magnitude
	}
	d := uint(pa.Scale - pb.Scale)
	baseScale := pb.Scale - workFracBits
	// Exact: big = pa.Frac << d, small = pb.Frac, both scaled by 2^baseScale.
	if d > 63 {
		// The small operand is more than a full word below the large one:
		// |small| < |big| * 2^-63 < ulp(big)/2, and big is itself exactly
		// representable, so the correctly rounded sum is just big.
		return c.Encode(pa, false)
	}
	bigHi, bigLo := shl128(0, pa.Frac, d)
	var hi, lo uint64
	neg := pa.Neg
	if pa.Neg == pb.Neg {
		var carry uint64
		lo, carry = bits.Add64(bigLo, pb.Frac, 0)
		hi, _ = bits.Add64(bigHi, 0, carry)
	} else {
		var borrow uint64
		lo, borrow = bits.Sub64(bigLo, pb.Frac, 0)
		hi, _ = bits.Sub64(bigHi, 0, borrow)
		if hi == 0 && lo == 0 {
			return 0 // exact cancellation
		}
	}
	pt, sticky := normalize128(neg, hi, lo, baseScale)
	return c.Encode(pt, sticky)
}

// Sub returns the correctly rounded difference a-b.
func (c Config) Sub(a, b uint64) uint64 {
	if c.IsNaR(b) {
		return c.NaR()
	}
	return c.Add(a, c.Neg(b))
}

// Mul returns the correctly rounded product a*b.
func (c Config) Mul(a, b uint64) uint64 {
	pa, sa := c.Decode(a)
	pb, sb := c.Decode(b)
	if sa == IsNaR || sb == IsNaR {
		return c.NaR()
	}
	if sa == IsZero || sb == IsZero {
		return 0
	}
	pa, pb = widen(pa), widen(pb)
	hi, lo := bits.Mul64(pa.Frac, pb.Frac)
	pt, sticky := normalize128(pa.Neg != pb.Neg, hi, lo, pa.Scale+pb.Scale-2*workFracBits)
	return c.Encode(pt, sticky)
}

// Div returns the correctly rounded quotient a/b. Division by zero is NaR.
func (c Config) Div(a, b uint64) uint64 {
	pa, sa := c.Decode(a)
	pb, sb := c.Decode(b)
	if sa == IsNaR || sb == IsNaR || sb == IsZero {
		return c.NaR()
	}
	if sa == IsZero {
		return 0
	}
	pa, pb = widen(pa), widen(pb)
	// q = floor(fa * 2^63 / fb); fa/fb in (1/2, 2) so q fits in 64 bits.
	q, rem := bits.Div64(pa.Frac>>1, pa.Frac<<63, pb.Frac)
	pt, sticky := normalize128(pa.Neg != pb.Neg, 0, q, pa.Scale-pb.Scale-63)
	return c.Encode(pt, sticky || rem != 0)
}

// Sqrt returns the correctly rounded square root of a.
// Negative inputs and NaR yield NaR; sqrt(0) is 0.
func (c Config) Sqrt(a uint64) uint64 {
	pa, sa := c.Decode(a)
	if sa == IsNaR || (sa == Finite && pa.Neg) {
		return c.NaR()
	}
	if sa == IsZero {
		return 0
	}
	pa = widen(pa)
	// Arrange an even exponent: value = frac * 2^(scale-61).
	frac, scale := pa.Frac, pa.Scale
	// Work with m = frac << s so that (scale - 61 - s) is even, then
	// sqrt(m * 2^(2t)) = sqrt(m) * 2^t.
	e := scale - workFracBits
	if e&1 != 0 {
		frac <<= 1 // frac < 2^62, safe
		e--
	}
	// m is up to 63 bits; compute isqrt of m << 62 for ~62 result bits.
	hi, lo := shl128(0, frac, 62)
	r, exact := isqrt128(hi, lo)
	pt, sticky := normalize128(false, 0, r, (e-62)/2)
	return c.Encode(pt, sticky || !exact)
}

// isqrt128 returns floor(sqrt(hi:lo)) and whether the root is exact.
func isqrt128(hi, lo uint64) (uint64, bool) {
	if hi == 0 && lo == 0 {
		return 0, true
	}
	// Initial estimate from a float sqrt, then Newton iterations on the
	// integer value, finishing with an exact correction.
	approx := float64(hi)*18446744073709551616.0 + float64(lo)
	r := uint64(math.Sqrt(approx))
	for i := 0; i < 6; i++ {
		if r == 0 {
			r = 1
		}
		// r' = (r + v/r) / 2 computed in 128 bits.
		qhi := hi
		if qhi >= r {
			// v/r would overflow 64 bits; clamp from above.
			r = ^uint64(0)
			continue
		}
		q, _ := bits.Div64(qhi, lo, r)
		nr := r/2 + q/2 + (r&1+q&1)/2
		if nr == r {
			break
		}
		r = nr
	}
	// Exact correction: ensure r*r <= v < (r+1)*(r+1).
	for {
		sqHi, sqLo := bits.Mul64(r, r)
		if sqHi > hi || (sqHi == hi && sqLo > lo) {
			r--
			continue
		}
		// check (r+1)^2 > v
		r1 := r + 1
		s1Hi, s1Lo := bits.Mul64(r1, r1)
		if r1 != 0 && (s1Hi < hi || (s1Hi == hi && s1Lo <= lo)) {
			r++
			continue
		}
		exact := sqHi == hi && sqLo == lo
		return r, exact
	}
}
