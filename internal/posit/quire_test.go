package posit

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

func TestQuireExhaustiveDot8(t *testing.T) {
	// Every posit8 x posit8 product accumulated alone must round exactly
	// like Mul.
	c := Posit8
	for a := uint64(0); a < 256; a++ {
		if c.IsNaR(a) {
			continue
		}
		for b := uint64(0); b < 256; b++ {
			if c.IsNaR(b) {
				continue
			}
			got := NewQuire(c).AddProduct(a, b).Posit()
			want := c.Mul(a, b)
			if got != want {
				t.Fatalf("quire product (%#x,%#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestQuireExactAccumulation(t *testing.T) {
	// Sum of products vs exact rational reference: the quire result must
	// equal the correctly rounded exact value, which sequential posit
	// arithmetic generally cannot achieve.
	for _, c := range []Config{Posit16, Posit32, Posit32e3} {
		rng := rand.New(rand.NewSource(int64(c.ES)))
		for trial := 0; trial < 50; trial++ {
			n := rng.Intn(30) + 2
			q := NewQuire(c)
			exact := new(big.Rat)
			for i := 0; i < n; i++ {
				a := c.FromFloat64(rng.NormFloat64() * 100)
				b := c.FromFloat64(rng.NormFloat64() * 100)
				q.AddProduct(a, b)
				exact.Add(exact, new(big.Rat).Mul(ratOf(c, a), ratOf(c, b)))
			}
			got := q.Posit()
			want := nearestPosit(c, exact)
			if got != want {
				t.Fatalf("%v trial %d: quire %#x, want %#x (exact %v)", c, trial, got, want, exact)
			}
		}
	}
}

func TestQuireCancellation(t *testing.T) {
	// A quire must survive catastrophic cancellation exactly.
	c := Posit32e3
	big1 := c.FromFloat64(1e20)
	tiny := c.FromFloat64(3.0)
	q := NewQuire(c)
	q.Add(big1).Add(tiny).Sub(big1)
	if got := c.ToFloat64(q.Posit()); got != 3.0 {
		t.Fatalf("cancellation: got %g, want 3", got)
	}
	// Sequential arithmetic loses the 3 entirely.
	seq := c.Sub(c.Add(big1, tiny), big1)
	if c.ToFloat64(seq) == 3.0 {
		t.Log("note: sequential arithmetic unexpectedly exact here")
	}
}

func TestQuireSpecials(t *testing.T) {
	c := Posit16
	q := NewQuire(c)
	q.Add(c.NaR())
	if !q.IsNaR() || !c.IsNaR(q.Posit()) {
		t.Fatal("NaR must poison the quire")
	}
	q.Reset()
	if q.IsNaR() {
		t.Fatal("reset must clear NaR")
	}
	if q.Posit() != 0 {
		t.Fatal("empty quire must be zero")
	}
	q.AddProduct(c.FromFloat64(2), 0)
	if q.Posit() != 0 {
		t.Fatal("product with zero")
	}
	q.AddProduct(c.NaR(), c.FromFloat64(1))
	if !c.IsNaR(q.Posit()) {
		t.Fatal("NaR product")
	}
	q.Reset()
	q.SubProduct(c.FromFloat64(2), c.FromFloat64(3))
	if got := c.ToFloat64(q.Posit()); got != -6 {
		t.Fatalf("SubProduct: %g", got)
	}
	q.Reset()
	q.Sub(c.NaR())
	if !q.IsNaR() {
		t.Fatal("Sub(NaR)")
	}
}

func TestQuireExtremes(t *testing.T) {
	c := Posit32e3
	// maxpos^2 and minpos^2 must fit the register exactly.
	q := NewQuire(c)
	q.AddProduct(c.MaxPos(), c.MaxPos())
	if got := q.Posit(); got != c.MaxPos() {
		t.Fatalf("maxpos^2 saturates to maxpos, got %#x", got)
	}
	q.Reset()
	q.AddProduct(c.MinPos(), c.MinPos())
	if got := q.Posit(); got != c.MinPos() {
		t.Fatalf("minpos^2 rounds to minpos, got %#x", got)
	}
	// minpos^2 - minpos^2 must cancel to exactly zero.
	q.SubProduct(c.MinPos(), c.MinPos())
	if got := q.Posit(); got != 0 {
		t.Fatalf("exact cancellation at register bottom, got %#x", got)
	}
}

func TestDotProductAndSum(t *testing.T) {
	c := Posit32e3
	a := []uint64{c.FromFloat64(1), c.FromFloat64(2), c.FromFloat64(3)}
	b := []uint64{c.FromFloat64(4), c.FromFloat64(5), c.FromFloat64(6)}
	if got := c.ToFloat64(c.DotProduct(a, b)); got != 32 {
		t.Fatalf("dot = %g", got)
	}
	if got := c.ToFloat64(c.Sum(a)); got != 6 {
		t.Fatalf("sum = %g", got)
	}
	// Ragged lengths use the shorter vector.
	if got := c.ToFloat64(c.DotProduct(a[:2], b)); got != 14 {
		t.Fatalf("ragged dot = %g", got)
	}
}

func BenchmarkQuireDotProduct(b *testing.B) {
	c := Posit32e3
	rng := rand.New(rand.NewSource(1))
	n := 4096
	va := make([]uint64, n)
	vb := make([]uint64, n)
	for i := range va {
		va[i] = c.FromFloat64(rng.NormFloat64())
		vb[i] = c.FromFloat64(rng.NormFloat64())
	}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DotProduct(va, vb)
	}
}

// An operand below the register's LSB must not panic: the fault is recorded
// stickily, Err reports it, and Posit answers NaR until Reset.
func TestQuirePrecisionFault(t *testing.T) {
	q := NewQuire(Posit32e3)
	q.addShifted(0, 1, q.lsb-1, false)
	if !errors.Is(q.Err(), ErrQuirePrecision) {
		t.Fatalf("Err() = %v, want ErrQuirePrecision", q.Err())
	}
	if got := q.Posit(); got != Posit32e3.NaR() {
		t.Fatalf("Posit() after precision fault = %#x, want NaR", got)
	}
	// The fault is sticky across further valid accumulations...
	q.Add(Posit32e3.FromFloat64(1.0))
	if q.Err() == nil {
		t.Fatal("precision fault was not sticky")
	}
	// ...and cleared by Reset.
	q.Reset()
	if q.Err() != nil {
		t.Fatalf("Err() after Reset = %v", q.Err())
	}
	q.Add(Posit32e3.FromFloat64(2.5))
	if got := Posit32e3.ToFloat64(q.Posit()); got != 2.5 {
		t.Fatalf("accumulator unusable after Reset: got %v", got)
	}
}
