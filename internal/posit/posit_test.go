package posit

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{Posit8, Posit16, Posit32, Posit64, Posit32e3} {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
	for _, c := range []Config{{2, 2}, {65, 2}, {32, 7}} {
		if err := c.Validate(); err == nil {
			t.Errorf("%v: want error", c)
		}
	}
}

func TestKnownPatternsPosit32(t *testing.T) {
	cases := []struct {
		cfg  Config
		f    float64
		bits uint64
	}{
		{Posit32, 1.0, 0x40000000},
		{Posit32, -1.0, 0xC0000000},
		{Posit32, 2.0, 0x48000000},
		{Posit32, 0.5, 0x38000000},
		{Posit32, 4.0, 0x50000000},
		{Posit32, 16.0, 0x60000000},
		{Posit32, 1.5, 0x44000000},
		{Posit32, 0, 0},
		{Posit32e3, 1.0, 0x40000000},
		{Posit32e3, -1.0, 0xC0000000},
		{Posit32e3, 256.0, 0x60000000}, // scale 8 = useed^1: regime 110, e=000
		{Posit8, 1.0, 0x40},
		{Posit8, -1.0, 0xC0},
		{Posit16, 1.0, 0x4000},
	}
	for _, tc := range cases {
		if got := tc.cfg.FromFloat64(tc.f); got != tc.bits {
			t.Errorf("%v FromFloat64(%g) = %#x, want %#x", tc.cfg, tc.f, got, tc.bits)
		}
		if tc.bits != 0 {
			if got := tc.cfg.ToFloat64(tc.bits); got != tc.f {
				t.Errorf("%v ToFloat64(%#x) = %g, want %g", tc.cfg, tc.bits, got, tc.f)
			}
		}
	}
}

func TestSpecials(t *testing.T) {
	for _, c := range []Config{Posit8, Posit16, Posit32, Posit32e3, Posit64} {
		if !c.IsNaR(c.FromFloat64(math.NaN())) {
			t.Errorf("%v: NaN must convert to NaR", c)
		}
		if !c.IsNaR(c.FromFloat64(math.Inf(1))) {
			t.Errorf("%v: +Inf must convert to NaR", c)
		}
		if !c.IsNaR(c.FromFloat64(math.Inf(-1))) {
			t.Errorf("%v: -Inf must convert to NaR", c)
		}
		if !c.IsZero(c.FromFloat64(0)) || !c.IsZero(c.FromFloat64(math.Copysign(0, -1))) {
			t.Errorf("%v: both IEEE zeros must map to posit zero", c)
		}
		if !math.IsNaN(c.ToFloat64(c.NaR())) {
			t.Errorf("%v: NaR must convert to NaN", c)
		}
		if c.ToFloat64(0) != 0 {
			t.Errorf("%v: zero roundtrip", c)
		}
		if c.Neg(c.NaR()) != c.NaR() {
			t.Errorf("%v: NaR must negate to NaR", c)
		}
	}
}

// Every posit16 pattern must decode and re-encode to itself, and must
// roundtrip exactly through float64 (posits this narrow embed in binary64).
func TestExhaustiveRoundtrip16(t *testing.T) {
	for _, es := range []uint{0, 1, 2, 3} {
		c := Config{16, es}
		for p := uint64(0); p < 1<<16; p++ {
			pt, sp := c.Decode(p)
			if sp != Finite {
				continue
			}
			back := c.Encode(pt, false)
			if back != p {
				t.Fatalf("%v: decode/encode %#x -> %+v -> %#x", c, p, pt, back)
			}
			f := c.ToFloat64(p)
			back2 := c.FromFloat64(f)
			if back2 != p {
				t.Fatalf("%v: float roundtrip %#x -> %g -> %#x", c, p, f, back2)
			}
		}
	}
}

func TestExhaustiveRoundtrip8AllES(t *testing.T) {
	for _, es := range []uint{0, 1, 2, 3, 4} {
		c := Config{8, es}
		for p := uint64(0); p < 1<<8; p++ {
			f := c.ToFloat64(p)
			if c.IsNaR(p) {
				if !math.IsNaN(f) {
					t.Fatalf("%v: NaR", c)
				}
				continue
			}
			if back := c.FromFloat64(f); back != p {
				t.Fatalf("%v: %#x -> %g -> %#x", c, p, f, back)
			}
		}
	}
}

// Posit patterns are monotonic: larger signed pattern <=> larger value.
func TestMonotonicity(t *testing.T) {
	for _, c := range []Config{{16, 1}, {16, 2}, Posit16, {12, 3}} {
		limit := uint64(1) << c.N
		prev := math.Inf(1) // start just above NaR (most negative pattern)
		first := true
		// Walk patterns in signed order: NaR+1 ... maxpos.
		for i := uint64(1); i < limit; i++ {
			p := (c.NaR() + i) & c.mask()
			v := c.ToFloat64(p)
			if !first && v <= prev {
				t.Fatalf("%v: not monotonic at %#x: %g <= %g", c, p, v, prev)
			}
			prev, first = v, false
		}
	}
}

func TestCompare(t *testing.T) {
	c := Posit16
	vals := []float64{-1000, -2, -1, -0.5, -1e-4, 0, 1e-4, 0.5, 1, 2, 1000}
	for i, a := range vals {
		for j, b := range vals {
			pa, pb := c.FromFloat64(a), c.FromFloat64(b)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := c.Compare(pa, pb); got != want {
				t.Errorf("Compare(%g,%g) = %d, want %d", a, b, got, want)
			}
		}
	}
	if c.Compare(c.NaR(), c.FromFloat64(-1e30)) != -1 {
		t.Error("NaR must sort below all reals")
	}
}

// Conversion must be correctly rounded under the standard's encoding-space
// round-to-nearest-even rule, verified against the exact-rational oracle in
// arith_test.go. In the linear region (results with a nonzero fraction
// field) this coincides with value-space nearest; in the regime-tapered
// region the boundary is geometric.
func TestConversionNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []Config{{16, 1}, Posit16, {16, 3}, {8, 2}} {
		for trial := 0; trial < 2000; trial++ {
			f := math.Ldexp(rng.Float64()+1, rng.Intn(80)-40)
			if rng.Intn(2) == 0 {
				f = -f
			}
			p := c.FromFloat64(f)
			if c.IsNaR(p) {
				t.Fatalf("%v: FromFloat64(%g) = NaR", c, f)
			}
			r := new(big.Rat).SetFloat64(f)
			if want := nearestPosit(c, r); p != want {
				t.Fatalf("%v: FromFloat64(%g) = %#x, want %#x", c, f, p, want)
			}
		}
	}
}

func TestSaturation(t *testing.T) {
	c := Posit32e3
	big := math.Ldexp(1, 300) // beyond maxpos scale 240
	if got := c.FromFloat64(big); got != c.MaxPos() {
		t.Errorf("overflow: got %#x want maxpos %#x", got, c.MaxPos())
	}
	if got := c.FromFloat64(-big); got != c.Neg(c.MaxPos()) {
		t.Errorf("negative overflow: got %#x", got)
	}
	tiny := math.Ldexp(1, -300)
	if got := c.FromFloat64(tiny); got != c.MinPos() {
		t.Errorf("underflow: got %#x want minpos", got)
	}
	if got := c.FromFloat64(-tiny); got != c.Neg(c.MinPos()) {
		t.Errorf("negative underflow: got %#x", got)
	}
	// Values just above half of minpos must still round to minpos (never 0).
	halfish := c.ToFloat64(c.MinPos()) * 0.001
	if got := c.FromFloat64(halfish); got != c.MinPos() {
		t.Errorf("tiny nonzero rounded to %#x, want minpos", got)
	}
}

// Paper section 4.2: posit<32,3> has enough dynamic range for all normal
// binary32 values; values near 1.0 roundtrip exactly because short regimes
// leave >= 23 fraction bits.
func TestFloat32NearOneExact(t *testing.T) {
	c := Posit32e3
	rng := rand.New(rand.NewSource(11))
	for exp := -16; exp <= 16; exp++ {
		for trial := 0; trial < 50; trial++ {
			bits := uint32(exp+127)<<23 | uint32(rng.Intn(1<<23))
			f := math.Float32frombits(bits)
			back := c.ToFloat32(uint64(c.FromFloat32(f)))
			if back != f {
				t.Fatalf("exp=%d: %g -> %g (bits %#x -> %#x)", exp, f, back,
					math.Float32bits(f), math.Float32bits(back))
			}
		}
	}
}

// Far-from-1.0 float32 values must lose fraction bits under posit<32,3> but
// never by more than the regime growth predicts.
func TestFloat32FarLoss(t *testing.T) {
	c := Posit32e3
	f := math.Float32frombits(uint32(120+127)<<23 | 0x5ABCDE) // scale 120
	back := c.ToFloat32(uint64(c.FromFloat32(f)))
	if back == f {
		t.Fatal("expected precision loss at scale 120")
	}
	rel := math.Abs(float64(back-f) / float64(f))
	if rel > 1e-2 {
		t.Fatalf("loss too large: rel=%g", rel)
	}
}

func TestDecodeEncodeQuick(t *testing.T) {
	for _, c := range []Config{Posit32, Posit32e3, {24, 1}, {64, 2}} {
		f := func(p uint64) bool {
			p &= c.mask()
			pt, sp := c.Decode(p)
			if sp != Finite {
				return true
			}
			return c.Encode(pt, false) == p
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

func TestPosit32Float64Roundtrip(t *testing.T) {
	// Every posit<32,es<=3> value embeds exactly in binary64.
	for _, c := range []Config{Posit32, Posit32e3} {
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 50000; trial++ {
			p := uint64(rng.Uint32())
			if c.IsNaR(p) {
				continue
			}
			if back := c.FromFloat64(c.ToFloat64(p)); back != p {
				t.Fatalf("%v: %#x -> %g -> %#x", c, p, c.ToFloat64(p), back)
			}
		}
	}
}

func TestAbs(t *testing.T) {
	c := Posit16
	p := c.FromFloat64(-3.5)
	if c.ToFloat64(c.Abs(p)) != 3.5 {
		t.Fatal("Abs(-3.5)")
	}
	if c.Abs(c.NaR()) != c.NaR() {
		t.Fatal("Abs(NaR)")
	}
	if c.Abs(0) != 0 {
		t.Fatal("Abs(0)")
	}
}

func TestMaxScaleAndBounds(t *testing.T) {
	c := Posit32e3
	if c.MaxScale() != 240 {
		t.Fatalf("MaxScale = %d, want 240", c.MaxScale())
	}
	if got := c.ToFloat64(c.MaxPos()); got != math.Ldexp(1, 240) {
		t.Fatalf("maxpos = %g", got)
	}
	if got := c.ToFloat64(c.MinPos()); got != math.Ldexp(1, -240) {
		t.Fatalf("minpos = %g", got)
	}
	c2 := Posit32
	if c2.MaxScale() != 120 {
		t.Fatalf("es=2 MaxScale = %d, want 120", c2.MaxScale())
	}
}
