package posit

import (
	"math"
	"math/rand"
	"testing"
)

func TestFloat64SliceRoundtrip(t *testing.T) {
	c := Config{64, 3}
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 5000)
	for i := range src {
		src[i] = math.Ldexp(rng.Float64()+1, rng.Intn(30)-15)
	}
	words := c.FromFloat64Slice(nil, src)
	back := c.ToFloat64Slice(nil, words)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("index %d: %g -> %g", i, src[i], back[i])
		}
	}
	st := c.RoundtripStats64(src)
	if st.Exact != len(src) {
		t.Fatalf("exact %d of %d", st.Exact, st.Total)
	}
}

func TestRoundtripStats64Lossy(t *testing.T) {
	c := Config{64, 3}
	// Scale 500: the regime eats ~65 bits... beyond n, so value saturates
	// region; pick scale 400 (regime ~51 bits, few fraction bits left).
	v := math.Ldexp(1.0000000000000002, 400)
	st := c.RoundtripStats64([]float64{1.0, v, math.NaN()})
	if st.Total != 3 {
		t.Fatal("total")
	}
	if st.Exact != 2 { // 1.0 and NaN->NaR->NaN count; v is lossy
		t.Fatalf("exact %d", st.Exact)
	}
}

func TestFloat64LE(t *testing.T) {
	src := []float64{1.5, -2.25, 0, math.Inf(1)}
	b := EncodeFloat64LE(src)
	back, err := DecodeFloat64LE(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float64bits(back[i]) != math.Float64bits(src[i]) {
			t.Fatalf("index %d", i)
		}
	}
	if _, err := DecodeFloat64LE([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged input accepted")
	}
	words := []uint64{0xDEADBEEFCAFEBABE, 1, 0}
	wb := EncodeWords64LE(words)
	wback, err := DecodeWords64LE(wb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if wback[i] != words[i] {
			t.Fatalf("word %d", i)
		}
	}
	if _, err := DecodeWords64LE([]byte{1}); err == nil {
		t.Fatal("ragged word input accepted")
	}
}

// posit<64,3> embeds all float64 values whose magnitude and precision fit
// the short-regime region: near 1.0 the roundtrip must be exact.
func TestPosit64NearOneExact(t *testing.T) {
	c := Config{64, 3}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		f := math.Ldexp(rng.Float64()+1, rng.Intn(12)-6)
		if got := c.ToFloat64(c.FromFloat64(f)); got != f {
			t.Fatalf("%g -> %g", f, got)
		}
	}
}
