package posit

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based round-trip tests over the full configuration grid
// n x es = {8,16,32} x {0,1,2,3}. Every posit of width <= 32 is exactly
// representable in float64, so posit -> float64 -> posit must be the
// identity on every bit pattern; float32 boundary values must convert
// with the documented special-value and saturation rules.

// gridConfigs enumerates the tested grid.
func gridConfigs() []Config {
	var cs []Config
	for _, n := range []uint{8, 16, 32} {
		for es := uint(0); es <= 3; es++ {
			cs = append(cs, Config{N: n, ES: es})
		}
	}
	return cs
}

// checkPatternRoundtrip asserts the two identities on one bit pattern:
// Encode(Decode(p)) == p and FromFloat64(ToFloat64(p)) == p.
func checkPatternRoundtrip(t *testing.T, c Config, p uint64) {
	t.Helper()
	if pt, sp := c.Decode(p); sp == Finite {
		if got := c.Encode(pt, false); got != p {
			t.Fatalf("%v: Encode(Decode(%#x)) = %#x", c, p, got)
		}
	}
	f := c.ToFloat64(p)
	if got := c.FromFloat64(f); got != p {
		t.Fatalf("%v: FromFloat64(ToFloat64(%#x)) = %#x (value %g)", c, p, got, f)
	}
}

// Every posit8 and posit16 bit pattern round-trips exactly, for every es in
// the grid (2^8 and 2^16 exhaustive sweeps).
func TestGridExhaustiveRoundtrip(t *testing.T) {
	for _, c := range gridConfigs() {
		if c.N > 16 {
			continue
		}
		c := c
		t.Run(c.String(), func(t *testing.T) {
			for p := uint64(0); p < 1<<c.N; p++ {
				checkPatternRoundtrip(t, c, p)
			}
		})
	}
}

// posit32 is sampled: every boundary pattern, a dense stride, and a seeded
// random set (an exhaustive 2^32 sweep per es would take hours).
func TestGridSampledRoundtrip32(t *testing.T) {
	for es := uint(0); es <= 3; es++ {
		c := Config{N: 32, ES: es}
		t.Run(c.String(), func(t *testing.T) {
			boundaries := []uint64{
				0, c.NaR(), c.MinPos(), c.MaxPos(),
				c.Neg(c.MinPos()), c.Neg(c.MaxPos()),
				1, 2, 3, c.NaR() - 1, c.NaR() + 1, c.mask(),
				0x40000000, 0x3FFFFFFF, 0x40000001, // around 1.0
			}
			for _, p := range boundaries {
				checkPatternRoundtrip(t, c, p&c.mask())
			}
			for p := uint64(0); p < 1<<32; p += 65521 { // prime stride
				checkPatternRoundtrip(t, c, p)
			}
			rng := rand.New(rand.NewSource(int64(es) + 100))
			for i := 0; i < 50000; i++ {
				checkPatternRoundtrip(t, c, uint64(rng.Uint32()))
			}
		})
	}
}

// boundaryFloat32s are the IEEE-754 edge cases the conversion rules call
// out: zeros, subnormals, normal extremes, infinities, NaN, and powers of
// two spanning the full exponent range.
func boundaryFloat32s() []float32 {
	vals := []float32{
		0, float32(math.Copysign(0, -1)),
		math.Float32frombits(0x00000001), // smallest subnormal
		math.Float32frombits(0x007FFFFF), // largest subnormal
		math.Float32frombits(0x00800000), // smallest normal
		math.MaxFloat32,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()),
		1, -1, 1.5, -1.5,
	}
	for k := -149; k <= 127; k += 7 {
		pw := float32(math.Ldexp(1, k))
		vals = append(vals, pw, -pw)
	}
	return vals
}

func TestGridBoundaryFloat32(t *testing.T) {
	for _, c := range gridConfigs() {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			for _, f := range boundaryFloat32s() {
				p := c.FromFloat32(f)
				switch {
				case math.IsNaN(float64(f)) || math.IsInf(float64(f), 0):
					if !c.IsNaR(p) {
						t.Fatalf("%v: %g -> %#x, want NaR", c, f, p)
					}
				case f == 0:
					if !c.IsZero(p) {
						t.Fatalf("%v: %g -> %#x, want zero", c, f, p)
					}
				default:
					// A nonzero finite value never rounds to zero or NaR.
					if c.IsZero(p) || c.IsNaR(p) {
						t.Fatalf("%v: finite %g collapsed to %#x", c, f, p)
					}
					// Sign is preserved exactly.
					back := c.ToFloat64(p)
					if (f < 0) != (back < 0) {
						t.Fatalf("%v: %g -> %#x -> %g sign flip", c, f, p, back)
					}
					// Out-of-range magnitudes saturate at maxpos/minpos.
					if s := math.Abs(float64(f)); s >= math.Ldexp(1, c.MaxScale()) {
						if c.Abs(p) != c.MaxPos() {
							t.Fatalf("%v: %g should saturate to maxpos, got %#x", c, f, p)
						}
					} else if s <= math.Ldexp(1, -c.MaxScale()) {
						if c.Abs(p) != c.MinPos() {
							t.Fatalf("%v: %g should saturate to minpos, got %#x", c, f, p)
						}
					}
					// A representable power of two converts exactly: the
					// regime and exponent fields alone must fit n-1 bits.
					if frac, exp := math.Frexp(math.Abs(float64(f))); frac == 0.5 {
						scale := exp - 1
						k := floorDiv(scale, 1<<c.ES)
						var regimeLen uint
						if k >= 0 {
							regimeLen = uint(k) + 2
						} else {
							regimeLen = uint(-k) + 1
						}
						if int(scale) <= c.MaxScale() && scale >= -c.MaxScale() &&
							regimeLen+c.ES <= c.N-1 {
							if back != float64(f) {
								t.Fatalf("%v: representable power of two %g -> %#x -> %g", c, f, p, back)
							}
						}
					}
				}
			}
		})
	}
}

// FromFloat64 is monotonic: ordering of finite float inputs is preserved
// by the posit ordering (Compare) for every grid configuration.
func TestGridConversionMonotonic(t *testing.T) {
	for _, c := range gridConfigs() {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(c.N)<<8 | int64(c.ES)))
			for trial := 0; trial < 20000; trial++ {
				a := ldexpRand(rng, -40, 40)
				b := ldexpRand(rng, -40, 40)
				if a > b {
					a, b = b, a
				}
				pa, pb := c.FromFloat64(a), c.FromFloat64(b)
				if c.Compare(pa, pb) > 0 {
					t.Fatalf("%v: monotonicity broken: %g -> %#x above %g -> %#x", c, a, pa, b, pb)
				}
			}
		})
	}
}

// Hand-derived anchors, independent of the implementation: 1.0 is always
// 0b0100...0; 2.0, 0.5, and useed=2^(2^es) have closed-form patterns.
func TestGridKnownVectors(t *testing.T) {
	for _, c := range gridConfigs() {
		one := uint64(1) << (c.N - 2) // 0b0100...0
		if got := c.FromFloat64(1); got != one {
			t.Errorf("%v: 1.0 -> %#x, want %#x", c, got, one)
		}
		if got := c.ToFloat64(one); got != 1 {
			t.Errorf("%v: %#x -> %g, want 1", c, one, got)
		}
		// 2.0: scale 1 = k*2^es + e with k=0 for es>0 (e=1), k=1 for es=0.
		var two uint64
		if c.ES == 0 {
			two = uint64(0b11) << (c.N - 3) // regime "110"
		} else {
			// Regime "10", exponent field 0..01 with its LSB at bit
			// n-3-es, fraction zeros.
			two = one | uint64(1)<<(c.N-3-c.ES)
		}
		if got := c.FromFloat64(2); got != two {
			t.Errorf("%v: 2.0 -> %#x, want %#x", c, got, two)
		}
		// useed = 2^(2^es): k=1, e=0 -> regime "110" then zeros.
		useed := uint64(0b11) << (c.N - 3)
		if got := c.FromFloat64(math.Ldexp(1, 1<<c.ES)); got != useed {
			t.Errorf("%v: useed -> %#x, want %#x", c, got, useed)
		}
		// Negation symmetry on an irrational sample.
		p, n := c.FromFloat64(math.Pi), c.FromFloat64(-math.Pi)
		if c.Neg(p) != n {
			t.Errorf("%v: FromFloat64(-pi) != Neg(FromFloat64(pi))", c)
		}
	}
}

// The batch converters must agree with the scalar path element-for-element
// (they share the kernel but run it across a worker pool).
func TestGridBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	src := make([]float32, 10000)
	for i := range src {
		src[i] = float32(ldexpRand(rng, -30, 30))
	}
	src[0], src[1], src[2] = 0, float32(math.Inf(1)), float32(math.NaN())
	for _, es := range []uint{0, 1, 2, 3} {
		c := Config{N: 32, ES: es}
		words := c.FromFloat32Slice(nil, src)
		for i, f := range src {
			if want := uint32(c.FromFloat32(f)); words[i] != want {
				t.Fatalf("%v: batch[%d] = %#x, scalar %#x", c, i, words[i], want)
			}
		}
		floats := c.ToFloat32Slice(nil, words)
		for i, w := range words {
			want := c.ToFloat32(uint64(w))
			if math.Float32bits(floats[i]) != math.Float32bits(want) &&
				!(math.IsNaN(float64(floats[i])) && math.IsNaN(float64(want))) {
				t.Fatalf("%v: batch back[%d] = %g, scalar %g", c, i, floats[i], want)
			}
		}
	}
}
