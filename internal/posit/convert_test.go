package posit

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

func TestFma(t *testing.T) {
	c := Posit32e3
	a := c.FromFloat64(3)
	b := c.FromFloat64(4)
	d := c.FromFloat64(5)
	if got := c.ToFloat64(c.Fma(a, b, d)); got != 17 {
		t.Fatalf("fma(3,4,5) = %g", got)
	}
	// Fusion advantage: (2^20+1)^2 = 2^40 + 2^21 + 1 needs 41 significand
	// bits, beyond posit<32,3>. The fused form keeps it exact until the
	// final rounding, so subtracting 2^40 recovers 2^21+1 exactly, while
	// mul-then-add loses the +1.
	x := c.FromFloat64(float64(1<<20 + 1))
	big1 := c.FromFloat64(math.Ldexp(1, 40))
	fused := c.ToFloat64(c.Fma(x, x, c.Neg(big1)))
	if fused != float64(1<<21+1) {
		t.Fatalf("fused: %g", fused)
	}
	seq := c.ToFloat64(c.Add(c.Mul(x, x), c.Neg(big1)))
	if seq == fused {
		t.Fatalf("sequential unexpectedly matched fused: %g", seq)
	}
	// NaR propagation.
	if !c.IsNaR(c.Fma(c.NaR(), a, b)) {
		t.Fatal("fma NaR")
	}
}

func TestFmaExactness(t *testing.T) {
	c := Posit16
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		a := uint64(rng.Intn(1 << 16))
		b := uint64(rng.Intn(1 << 16))
		d := uint64(rng.Intn(1 << 16))
		if c.IsNaR(a) || c.IsNaR(b) || c.IsNaR(d) {
			continue
		}
		exact := new(big.Rat).Mul(ratOf(c, a), ratOf(c, b))
		exact.Add(exact, ratOf(c, d))
		want := nearestPosit(c, exact)
		if got := c.Fma(a, b, d); got != want {
			t.Fatalf("fma(%#x,%#x,%#x) = %#x, want %#x", a, b, d, got, want)
		}
	}
}

func TestConvertFrom(t *testing.T) {
	// Widening posit16 -> posit32 must be exact for every pattern.
	for p := uint64(0); p < 1<<16; p++ {
		q := Posit32.ConvertFrom(Posit16, p)
		if Posit16.IsNaR(p) {
			if !Posit32.IsNaR(q) {
				t.Fatal("NaR conversion")
			}
			continue
		}
		if Posit32.ToFloat64(q) != Posit16.ToFloat64(p) {
			t.Fatalf("widen %#x: %g != %g", p, Posit32.ToFloat64(q), Posit16.ToFloat64(p))
		}
		// Narrowing back must reproduce the original.
		if back := Posit16.ConvertFrom(Posit32, q); back != p {
			t.Fatalf("narrow %#x -> %#x", p, back)
		}
	}
}

func TestConvertFromRounding(t *testing.T) {
	// Narrowing rounds: a posit32 value with too many fraction bits for
	// posit16 must land on the nearest posit16.
	c32, c16 := Posit32, Posit16
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		p := uint64(rng.Uint32())
		if c32.IsNaR(p) {
			continue
		}
		got := c16.ConvertFrom(c32, p)
		want := nearestPosit(c16, ratOf(c32, p))
		if got != want {
			t.Fatalf("narrow %#x: got %#x want %#x", p, got, want)
		}
	}
}

func TestFromInt64(t *testing.T) {
	c := Posit32e3
	// All cases fit the posit<32,3> fraction budget at their scale.
	cases := []int64{0, 1, -1, 2, 42, -100, 1 << 20, -(1 << 30), 1234567}
	for _, v := range cases {
		if got := c.ToFloat64(c.FromInt64(v)); got != float64(v) {
			t.Fatalf("FromInt64(%d) = %g", v, got)
		}
	}
	// Large magnitudes round.
	huge := int64(1)<<62 + 12345
	got := c.ToFloat64(c.FromInt64(huge))
	if math.Abs(got-float64(huge))/float64(huge) > 1e-6 {
		t.Fatalf("FromInt64(huge) = %g", got)
	}
	// Correct rounding vs the rational oracle.
	c16 := Posit16
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		v := rng.Int63n(1<<40) - 1<<39
		want := nearestPosit(c16, new(big.Rat).SetInt64(v))
		if got := c16.FromInt64(v); got != want {
			t.Fatalf("FromInt64(%d) = %#x, want %#x", v, got, want)
		}
	}
	if c.FromInt64(math.MinInt64) != c.Encode(Parts{Neg: true, Scale: 63, Frac: 1 << workFracBits, FracBits: workFracBits}, false) {
		t.Fatal("MinInt64")
	}
}

func TestToInt64(t *testing.T) {
	c := Posit32e3
	cases := []struct {
		f     float64
		want  int64
		exact bool
	}{
		{0, 0, true},
		{1, 1, true},
		{-3, -3, true},
		{2.5, 2, false},  // ties to even
		{3.5, 4, false},  // ties to even
		{2.75, 3, false}, // round up
		{-2.5, -2, false},
		{0.25, 0, false},
		{1e6, 1000000, true},
	}
	for _, tc := range cases {
		got, exact := c.ToInt64(c.FromFloat64(tc.f))
		if got != tc.want || exact != tc.exact {
			t.Fatalf("ToInt64(%g) = %d,%v want %d,%v", tc.f, got, exact, tc.want, tc.exact)
		}
	}
	if v, ok := c.ToInt64(c.NaR()); v != 0 || ok {
		t.Fatal("NaR")
	}
	// Saturation.
	if v, ok := c.ToInt64(c.MaxPos()); v != 1<<63-1 || ok {
		t.Fatalf("maxpos: %d %v", v, ok)
	}
	if v, ok := c.ToInt64(c.Neg(c.MaxPos())); v != -1<<63 || ok {
		t.Fatalf("negative saturate: %d %v", v, ok)
	}
	// Exact -2^63 via posit<64,2>.
	c64 := Posit64
	p := c64.FromFloat64(-math.Ldexp(1, 63))
	if v, ok := c64.ToInt64(p); v != math.MinInt64 || !ok {
		t.Fatalf("-2^63: %d %v", v, ok)
	}
	// Tiny values round to zero inexactly.
	if v, ok := c.ToInt64(c.MinPos()); v != 0 || ok {
		t.Fatalf("minpos: %d %v", v, ok)
	}
}

func TestIntRoundtripQuick(t *testing.T) {
	// posit<64,2> has >= 44 fraction bits for scales up to ~60, so every
	// integer below 2^40 is exactly representable.
	c := Config{64, 2}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5000; trial++ {
		v := rng.Int63n(1<<40) - 1<<39
		got, exact := c.ToInt64(c.FromInt64(v))
		if got != v || !exact {
			t.Fatalf("int roundtrip %d -> %d (%v)", v, got, exact)
		}
	}
}
