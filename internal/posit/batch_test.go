package posit

import (
	"math"
	"math/rand"
	"testing"
)

func TestFloat32SliceRoundtrip(t *testing.T) {
	c := Posit32e3
	rng := rand.New(rand.NewSource(21))
	src := make([]float32, 10000)
	for i := range src {
		src[i] = float32(math.Ldexp(rng.Float64()+1, rng.Intn(20)-10))
	}
	words := c.FromFloat32Slice(nil, src)
	back := c.ToFloat32Slice(nil, words)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("index %d: %g -> %g", i, src[i], back[i])
		}
	}
}

func TestRoundtripStats(t *testing.T) {
	c := Posit32e3
	src := []float32{1.0, 2.0, 0.5, -3.25, 0,
		// Scale 120: the regime eats 17 bits, leaving 11 fraction bits, so
		// the low mantissa bit set here is lost in conversion.
		float32(math.Ldexp(1.0000001, 120)),
	}
	st := c.RoundtripStats(src)
	if st.Total != len(src) {
		t.Fatalf("total %d", st.Total)
	}
	if st.Exact != len(src)-1 {
		t.Fatalf("exact %d, want %d", st.Exact, len(src)-1)
	}
	if st.MaxAbsE <= 0 {
		t.Fatal("expected nonzero max error")
	}
	pct := st.PrecisePct()
	want := 100 * float64(len(src)-1) / float64(len(src))
	if math.Abs(pct-want) > 1e-9 {
		t.Fatalf("pct %g want %g", pct, want)
	}
}

func TestRoundtripStatsNaN(t *testing.T) {
	c := Posit32e3
	st := c.RoundtripStats([]float32{float32(math.NaN())})
	if st.Exact != 1 {
		t.Fatal("NaN -> NaR -> NaN should count as exact")
	}
}

func TestPrecisePctEmpty(t *testing.T) {
	var s ConvertStats
	if s.PrecisePct() != 100 {
		t.Fatal("empty stats should be 100% precise")
	}
}

func TestLEEncoding(t *testing.T) {
	src := []float32{1.5, -2.25, 0, float32(math.Inf(1))}
	b := EncodeFloat32LE(src)
	if len(b) != 16 {
		t.Fatalf("len %d", len(b))
	}
	back, err := DecodeFloat32LE(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float32bits(back[i]) != math.Float32bits(src[i]) {
			t.Fatalf("index %d", i)
		}
	}
	if _, err := DecodeFloat32LE([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for ragged input")
	}

	words := []uint32{0xDEADBEEF, 1, 0}
	wb := EncodeWordsLE(words)
	wback, err := DecodeWordsLE(wb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if wback[i] != words[i] {
			t.Fatalf("word %d", i)
		}
	}
	if _, err := DecodeWordsLE([]byte{1}); err == nil {
		t.Fatal("want error for ragged input")
	}
}

func TestConvertFileF32ToPosit(t *testing.T) {
	c := Posit32e3
	src := []float32{1, 2, 3, 4.5, -0.125}
	f32 := EncodeFloat32LE(src)
	pos, st, err := c.ConvertFileF32ToPosit(f32)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != len(f32) {
		t.Fatalf("posit file must be the same size: %d vs %d", len(pos), len(f32))
	}
	if st.Exact != len(src) {
		t.Fatalf("exact %d", st.Exact)
	}
	words, _ := DecodeWordsLE(pos)
	for i, w := range words {
		if got := c.ToFloat32(uint64(w)); got != src[i] {
			t.Fatalf("value %d: %g != %g", i, got, src[i])
		}
	}
	if _, _, err := Posit16.ConvertFileF32ToPosit(f32); err == nil {
		t.Fatal("non-32-bit config must be rejected")
	}
	if _, _, err := c.ConvertFileF32ToPosit([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged input must be rejected")
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	c := Posit32e3
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 1<<16)
	for i := range src {
		src[i] = float32(math.Ldexp(rng.Float64()+1, rng.Intn(40)-20))
	}
	dst := make([]uint32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FromFloat32Slice(dst, src)
	}
}

func BenchmarkToFloat32(b *testing.B) {
	c := Posit32e3
	rng := rand.New(rand.NewSource(2))
	src := make([]uint32, 1<<16)
	for i := range src {
		src[i] = rng.Uint32()
	}
	dst := make([]float32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ToFloat32Slice(dst, src)
	}
}

func TestWorkersVariantsMatchDefault(t *testing.T) {
	cfg := Config{N: 32, ES: 3}
	src := make([]float32, 10001)
	for i := range src {
		src[i] = float32(math.Sin(float64(i)/7)) * float32(i%97)
	}
	want := cfg.FromFloat32Slice(nil, src)
	for _, nw := range []int{1, 2, 3, 16, 1000} {
		got := cfg.FromFloat32SliceWorkers(nil, src, nw)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: word %d is %08x, want %08x", nw, i, got[i], want[i])
			}
		}
		back := cfg.ToFloat32SliceWorkers(nil, got, nw)
		ref := cfg.ToFloat32Slice(nil, want)
		for i := range back {
			if math.Float32bits(back[i]) != math.Float32bits(ref[i]) {
				t.Fatalf("workers=%d: float %d diverged", nw, i)
			}
		}
		st := cfg.RoundtripStatsWorkers(src, nw)
		ref2 := cfg.RoundtripStats(src)
		if st != ref2 {
			t.Fatalf("workers=%d: stats %+v, want %+v", nw, st, ref2)
		}
	}
}

func TestWorkersVariantEmptyInput(t *testing.T) {
	cfg := Config{N: 32, ES: 3}
	if got := cfg.FromFloat32SliceWorkers(nil, nil, 8); len(got) != 0 {
		t.Fatalf("empty input produced %d words", len(got))
	}
	if st := cfg.RoundtripStatsWorkers(nil, 8); st.Total != 0 {
		t.Fatalf("empty input stats %+v", st)
	}
}
