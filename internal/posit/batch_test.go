package posit

import (
	"math"
	"math/rand"
	"testing"
)

func TestFloat32SliceRoundtrip(t *testing.T) {
	c := Posit32e3
	rng := rand.New(rand.NewSource(21))
	src := make([]float32, 10000)
	for i := range src {
		src[i] = float32(math.Ldexp(rng.Float64()+1, rng.Intn(20)-10))
	}
	words := c.FromFloat32Slice(nil, src)
	back := c.ToFloat32Slice(nil, words)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("index %d: %g -> %g", i, src[i], back[i])
		}
	}
}

func TestRoundtripStats(t *testing.T) {
	c := Posit32e3
	src := []float32{1.0, 2.0, 0.5, -3.25, 0,
		// Scale 120: the regime eats 17 bits, leaving 11 fraction bits, so
		// the low mantissa bit set here is lost in conversion.
		float32(math.Ldexp(1.0000001, 120)),
	}
	st := c.RoundtripStats(src)
	if st.Total != len(src) {
		t.Fatalf("total %d", st.Total)
	}
	if st.Exact != len(src)-1 {
		t.Fatalf("exact %d, want %d", st.Exact, len(src)-1)
	}
	if st.MaxAbsE <= 0 {
		t.Fatal("expected nonzero max error")
	}
	pct := st.PrecisePct()
	want := 100 * float64(len(src)-1) / float64(len(src))
	if math.Abs(pct-want) > 1e-9 {
		t.Fatalf("pct %g want %g", pct, want)
	}
}

func TestRoundtripStatsNaN(t *testing.T) {
	c := Posit32e3
	st := c.RoundtripStats([]float32{float32(math.NaN())})
	if st.Exact != 1 {
		t.Fatal("NaN -> NaR -> NaN should count as exact")
	}
}

func TestPrecisePctEmpty(t *testing.T) {
	var s ConvertStats
	if s.PrecisePct() != 100 {
		t.Fatal("empty stats should be 100% precise")
	}
}

func TestLEEncoding(t *testing.T) {
	src := []float32{1.5, -2.25, 0, float32(math.Inf(1))}
	b := EncodeFloat32LE(src)
	if len(b) != 16 {
		t.Fatalf("len %d", len(b))
	}
	back, err := DecodeFloat32LE(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if math.Float32bits(back[i]) != math.Float32bits(src[i]) {
			t.Fatalf("index %d", i)
		}
	}
	if _, err := DecodeFloat32LE([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for ragged input")
	}

	words := []uint32{0xDEADBEEF, 1, 0}
	wb := EncodeWordsLE(words)
	wback, err := DecodeWordsLE(wb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if wback[i] != words[i] {
			t.Fatalf("word %d", i)
		}
	}
	if _, err := DecodeWordsLE([]byte{1}); err == nil {
		t.Fatal("want error for ragged input")
	}
}

func TestConvertFileF32ToPosit(t *testing.T) {
	c := Posit32e3
	src := []float32{1, 2, 3, 4.5, -0.125}
	f32 := EncodeFloat32LE(src)
	pos, st, err := c.ConvertFileF32ToPosit(f32)
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != len(f32) {
		t.Fatalf("posit file must be the same size: %d vs %d", len(pos), len(f32))
	}
	if st.Exact != len(src) {
		t.Fatalf("exact %d", st.Exact)
	}
	words, _ := DecodeWordsLE(pos)
	for i, w := range words {
		if got := c.ToFloat32(uint64(w)); got != src[i] {
			t.Fatalf("value %d: %g != %g", i, got, src[i])
		}
	}
	if _, _, err := Posit16.ConvertFileF32ToPosit(f32); err == nil {
		t.Fatal("non-32-bit config must be rejected")
	}
	if _, _, err := c.ConvertFileF32ToPosit([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged input must be rejected")
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	c := Posit32e3
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 1<<16)
	for i := range src {
		src[i] = float32(math.Ldexp(rng.Float64()+1, rng.Intn(40)-20))
	}
	dst := make([]uint32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FromFloat32Slice(dst, src)
	}
}

func BenchmarkToFloat32(b *testing.B) {
	c := Posit32e3
	rng := rand.New(rand.NewSource(2))
	src := make([]uint32, 1<<16)
	for i := range src {
		src[i] = rng.Uint32()
	}
	dst := make([]float32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ToFloat32Slice(dst, src)
	}
}
