package posit

import "fmt"

// Typed wrappers: ergonomic fixed-width posit value types in the style of
// softposit bindings. Each type carries its bit pattern; operations are
// correctly rounded via the generic Config engine.

// P32e3 is a posit<32,3> value, the representation the paper stores data in.
type P32e3 uint32

// FromFloat64P32e3 converts a float64 to posit<32,3>.
func FromFloat64P32e3(f float64) P32e3 { return P32e3(Posit32e3.FromFloat64(f)) }

// Float64 converts back to float64 (exact for every posit32 value).
func (p P32e3) Float64() float64 { return Posit32e3.ToFloat64(uint64(p)) }

// Add returns the correctly rounded sum.
func (p P32e3) Add(q P32e3) P32e3 { return P32e3(Posit32e3.Add(uint64(p), uint64(q))) }

// Sub returns the correctly rounded difference.
func (p P32e3) Sub(q P32e3) P32e3 { return P32e3(Posit32e3.Sub(uint64(p), uint64(q))) }

// Mul returns the correctly rounded product.
func (p P32e3) Mul(q P32e3) P32e3 { return P32e3(Posit32e3.Mul(uint64(p), uint64(q))) }

// Div returns the correctly rounded quotient.
func (p P32e3) Div(q P32e3) P32e3 { return P32e3(Posit32e3.Div(uint64(p), uint64(q))) }

// Sqrt returns the correctly rounded square root.
func (p P32e3) Sqrt() P32e3 { return P32e3(Posit32e3.Sqrt(uint64(p))) }

// Neg returns the negation.
func (p P32e3) Neg() P32e3 { return P32e3(Posit32e3.Neg(uint64(p))) }

// Abs returns the magnitude.
func (p P32e3) Abs() P32e3 { return P32e3(Posit32e3.Abs(uint64(p))) }

// IsNaR reports whether p is Not-a-Real.
func (p P32e3) IsNaR() bool { return Posit32e3.IsNaR(uint64(p)) }

// Cmp orders two posits: -1, 0, +1.
func (p P32e3) Cmp(q P32e3) int { return Posit32e3.Compare(uint64(p), uint64(q)) }

// String formats the value like a float64 (NaR prints as "NaR").
func (p P32e3) String() string { return formatPosit(Posit32e3, uint64(p)) }

// Bits returns the raw pattern.
func (p P32e3) Bits() uint32 { return uint32(p) }

// P32 is a standard posit<32,2> value.
type P32 uint32

// FromFloat64P32 converts a float64 to posit<32,2>.
func FromFloat64P32(f float64) P32 { return P32(Posit32.FromFloat64(f)) }

// Float64 converts back to float64 (exact for every posit32 value).
func (p P32) Float64() float64 { return Posit32.ToFloat64(uint64(p)) }

// Add returns the correctly rounded sum.
func (p P32) Add(q P32) P32 { return P32(Posit32.Add(uint64(p), uint64(q))) }

// Sub returns the correctly rounded difference.
func (p P32) Sub(q P32) P32 { return P32(Posit32.Sub(uint64(p), uint64(q))) }

// Mul returns the correctly rounded product.
func (p P32) Mul(q P32) P32 { return P32(Posit32.Mul(uint64(p), uint64(q))) }

// Div returns the correctly rounded quotient.
func (p P32) Div(q P32) P32 { return P32(Posit32.Div(uint64(p), uint64(q))) }

// Sqrt returns the correctly rounded square root.
func (p P32) Sqrt() P32 { return P32(Posit32.Sqrt(uint64(p))) }

// Neg returns the negation.
func (p P32) Neg() P32 { return P32(Posit32.Neg(uint64(p))) }

// Abs returns the magnitude.
func (p P32) Abs() P32 { return P32(Posit32.Abs(uint64(p))) }

// IsNaR reports whether p is Not-a-Real.
func (p P32) IsNaR() bool { return Posit32.IsNaR(uint64(p)) }

// Cmp orders two posits: -1, 0, +1.
func (p P32) Cmp(q P32) int { return Posit32.Compare(uint64(p), uint64(q)) }

// String formats the value like a float64 (NaR prints as "NaR").
func (p P32) String() string { return formatPosit(Posit32, uint64(p)) }

// Bits returns the raw pattern.
func (p P32) Bits() uint32 { return uint32(p) }

// P16 is a standard posit<16,2> value.
type P16 uint16

// FromFloat64P16 converts a float64 to posit<16,2>.
func FromFloat64P16(f float64) P16 { return P16(Posit16.FromFloat64(f)) }

// Float64 converts back to float64 (exact for every posit16 value).
func (p P16) Float64() float64 { return Posit16.ToFloat64(uint64(p)) }

// Add returns the correctly rounded sum.
func (p P16) Add(q P16) P16 { return P16(Posit16.Add(uint64(p), uint64(q))) }

// Sub returns the correctly rounded difference.
func (p P16) Sub(q P16) P16 { return P16(Posit16.Sub(uint64(p), uint64(q))) }

// Mul returns the correctly rounded product.
func (p P16) Mul(q P16) P16 { return P16(Posit16.Mul(uint64(p), uint64(q))) }

// Div returns the correctly rounded quotient.
func (p P16) Div(q P16) P16 { return P16(Posit16.Div(uint64(p), uint64(q))) }

// Sqrt returns the correctly rounded square root.
func (p P16) Sqrt() P16 { return P16(Posit16.Sqrt(uint64(p))) }

// Neg returns the negation.
func (p P16) Neg() P16 { return P16(Posit16.Neg(uint64(p))) }

// Abs returns the magnitude.
func (p P16) Abs() P16 { return P16(Posit16.Abs(uint64(p))) }

// IsNaR reports whether p is Not-a-Real.
func (p P16) IsNaR() bool { return Posit16.IsNaR(uint64(p)) }

// Cmp orders two posits: -1, 0, +1.
func (p P16) Cmp(q P16) int { return Posit16.Compare(uint64(p), uint64(q)) }

// String formats the value like a float64 (NaR prints as "NaR").
func (p P16) String() string { return formatPosit(Posit16, uint64(p)) }

// Bits returns the raw pattern.
func (p P16) Bits() uint16 { return uint16(p) }

// P8 is a standard posit<8,2> value.
type P8 uint8

// FromFloat64P8 converts a float64 to posit<8,2>.
func FromFloat64P8(f float64) P8 { return P8(Posit8.FromFloat64(f)) }

// Float64 converts back to float64 (exact for every posit8 value).
func (p P8) Float64() float64 { return Posit8.ToFloat64(uint64(p)) }

// Add returns the correctly rounded sum.
func (p P8) Add(q P8) P8 { return P8(Posit8.Add(uint64(p), uint64(q))) }

// Sub returns the correctly rounded difference.
func (p P8) Sub(q P8) P8 { return P8(Posit8.Sub(uint64(p), uint64(q))) }

// Mul returns the correctly rounded product.
func (p P8) Mul(q P8) P8 { return P8(Posit8.Mul(uint64(p), uint64(q))) }

// Div returns the correctly rounded quotient.
func (p P8) Div(q P8) P8 { return P8(Posit8.Div(uint64(p), uint64(q))) }

// Sqrt returns the correctly rounded square root.
func (p P8) Sqrt() P8 { return P8(Posit8.Sqrt(uint64(p))) }

// Neg returns the negation.
func (p P8) Neg() P8 { return P8(Posit8.Neg(uint64(p))) }

// Abs returns the magnitude.
func (p P8) Abs() P8 { return P8(Posit8.Abs(uint64(p))) }

// IsNaR reports whether p is Not-a-Real.
func (p P8) IsNaR() bool { return Posit8.IsNaR(uint64(p)) }

// Cmp orders two posits: -1, 0, +1.
func (p P8) Cmp(q P8) int { return Posit8.Compare(uint64(p), uint64(q)) }

// String formats the value like a float64 (NaR prints as "NaR").
func (p P8) String() string { return formatPosit(Posit8, uint64(p)) }

// Bits returns the raw pattern.
func (p P8) Bits() uint8 { return uint8(p) }

func formatPosit(cfg Config, bits uint64) string {
	if cfg.IsNaR(bits) {
		return "NaR"
	}
	return fmt.Sprintf("%g", cfg.ToFloat64(bits))
}
