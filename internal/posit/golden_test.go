package posit

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate posit golden vector files")

// Golden conversion vectors: for every grid configuration a checked-in file
// pins float32 -> posit -> float32 down to the bit. The files freeze
// today's (property- and anchor-verified) behaviour so any future change
// to rounding, saturation, or special-value handling shows up as a diff,
// not a silent drift. Regenerate deliberately with:
//
//	go test ./internal/posit -run TestGoldenVectors -update

// goldenFloat32s is the deterministic input set: every boundary value plus
// a seeded sample of ordinary magnitudes.
func goldenFloat32s() []float32 {
	vals := boundaryFloat32s()
	vals = append(vals,
		float32(math.Pi), float32(-math.Pi), float32(1.0/3.0), 0.1, -0.1,
		123456.789, -123456.789, 65535, 1e-30, -1e30,
	)
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 48; i++ {
		vals = append(vals, float32(ldexpRand(rng, -24, 24)))
	}
	return vals
}

func goldenPath(c Config) string {
	return filepath.Join("testdata", fmt.Sprintf("golden_p%de%d.txt", c.N, c.ES))
}

// goldenLine renders one vector: input float32 bits, posit bits, and the
// bits of the float32 produced by converting back.
func goldenLine(c Config, f float32) string {
	p := c.FromFloat32(f)
	back := c.ToFloat32(p)
	return fmt.Sprintf("%08x %0*x %08x", math.Float32bits(f), int(c.N)/4, p, math.Float32bits(back))
}

func TestGoldenVectors(t *testing.T) {
	vals := goldenFloat32s()
	for _, c := range gridConfigs() {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			path := goldenPath(c)
			if *updateGolden {
				var b strings.Builder
				fmt.Fprintf(&b, "# %s golden vectors: f32_bits posit_bits back_f32_bits\n", c)
				for _, f := range vals {
					b.WriteString(goldenLine(c, f))
					b.WriteByte('\n')
				}
				if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			file, err := os.Open(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			defer file.Close()
			sc := bufio.NewScanner(file)
			i := 0
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				if i >= len(vals) {
					t.Fatalf("golden file has more vectors than the generator (line %q)", line)
				}
				if got := goldenLine(c, vals[i]); got != line {
					t.Errorf("vector %d (%g): got %q, golden %q", i, vals[i], got, line)
				}
				i++
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			if i != len(vals) {
				t.Fatalf("golden file has %d vectors, generator produces %d (regenerate with -update)", i, len(vals))
			}
		})
	}
}
