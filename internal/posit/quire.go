package posit

import (
	"errors"
	"math/bits"
)

// ErrQuirePrecision reports an accumulation whose operand fell below the
// quire register's least significant bit. The register is sized so this is
// unreachable for in-range posit operands; it indicates a decoder bug or a
// hand-built Parts value. The accumulator records it stickily instead of
// panicking: Err returns it and Posit returns NaR.
var ErrQuirePrecision = errors.New("posit: quire operand below register precision")

// Quire is the posit standard's exact accumulator: a wide two's-complement
// fixed-point register that can absorb sums of posit products without any
// rounding. A dot product accumulated through a quire incurs exactly one
// rounding, at the final conversion back to posit.
//
// The register spans every product of two finite posits: products scale
// from 2^(-2*MaxScale) to 2^(2*MaxScale) with up to 2*workFracBits fraction
// bits, plus carry headroom for 2^32 accumulations.
type Quire struct {
	cfg   Config
	words []uint64 // little-endian limbs, two's complement
	nar   bool     // poisoned by a NaR operand
	err   error    // sticky ErrQuirePrecision; forces NaR
	lsb   int      // exponent of the least significant register bit
}

// NewQuire returns an empty accumulator for cfg.
func NewQuire(cfg Config) *Quire {
	s := cfg.MaxScale()
	// Fraction LSB of a product: 2^(-2s - 2*workFracBits); headroom above
	// +2s for carries and the sign.
	lsb := -2*s - 2*workFracBits
	msb := 2*s + 64
	totalBits := msb - lsb + 1
	nw := (totalBits + 63) / 64
	return &Quire{cfg: cfg, words: make([]uint64, nw), lsb: lsb}
}

// Reset clears the accumulator, including any sticky error.
func (q *Quire) Reset() {
	for i := range q.words {
		q.words[i] = 0
	}
	q.nar = false
	q.err = nil
}

// IsNaR reports whether a NaR operand poisoned the accumulator.
func (q *Quire) IsNaR() bool { return q.nar }

// Err returns the sticky accumulation error, if any. A non-nil value means
// some operand could not be represented in the register; the accumulated
// value is unreliable and Posit reports NaR.
func (q *Quire) Err() error { return q.err }

// addShifted adds (or subtracts) a 128-bit magnitude aligned so that its
// bit 0 has exponent exp.
func (q *Quire) addShifted(hi, lo uint64, exp int, negate bool) {
	offset := exp - q.lsb
	if offset < 0 {
		// Unreachable for in-range posit operands: the register's LSB was
		// sized to the smallest possible product. Record the fault stickily
		// rather than panicking; the accumulator answers NaR from here on.
		q.err = ErrQuirePrecision
		return
	}
	word := offset / 64
	bitOff := uint(offset % 64)
	var parts [3]uint64
	parts[0] = lo << bitOff
	if bitOff == 0 {
		parts[1] = hi
	} else {
		parts[1] = lo>>(64-bitOff) | hi<<bitOff
		parts[2] = hi >> (64 - bitOff)
	}
	if !negate {
		var carry uint64
		for i := 0; i < len(parts); i++ {
			if word+i >= len(q.words) {
				break
			}
			q.words[word+i], carry = bits.Add64(q.words[word+i], parts[i], carry)
		}
		for i := word + len(parts); carry != 0 && i < len(q.words); i++ {
			q.words[i], carry = bits.Add64(q.words[i], 0, carry)
		}
	} else {
		var borrow uint64
		for i := 0; i < len(parts); i++ {
			if word+i >= len(q.words) {
				break
			}
			q.words[word+i], borrow = bits.Sub64(q.words[word+i], parts[i], borrow)
		}
		for i := word + len(parts); borrow != 0 && i < len(q.words); i++ {
			q.words[i], borrow = bits.Sub64(q.words[i], 0, borrow)
		}
	}
}

// Add accumulates a posit value exactly.
func (q *Quire) Add(p uint64) *Quire {
	pt, sp := q.cfg.Decode(p)
	switch sp {
	case IsNaR:
		q.nar = true
		return q
	case IsZero:
		return q
	}
	pt = widen(pt)
	q.addShifted(0, pt.Frac, pt.Scale-workFracBits, pt.Neg)
	return q
}

// Sub subtracts a posit value exactly.
func (q *Quire) Sub(p uint64) *Quire {
	if q.cfg.IsNaR(p) {
		q.nar = true
		return q
	}
	return q.Add(q.cfg.Neg(p))
}

// AddProduct accumulates a*b exactly (the fused dot-product step).
func (q *Quire) AddProduct(a, b uint64) *Quire {
	pa, sa := q.cfg.Decode(a)
	pb, sb := q.cfg.Decode(b)
	if sa == IsNaR || sb == IsNaR {
		q.nar = true
		return q
	}
	if sa == IsZero || sb == IsZero {
		return q
	}
	pa, pb = widen(pa), widen(pb)
	hi, lo := bits.Mul64(pa.Frac, pb.Frac)
	q.addShifted(hi, lo, pa.Scale+pb.Scale-2*workFracBits, pa.Neg != pb.Neg)
	return q
}

// SubProduct subtracts a*b exactly.
func (q *Quire) SubProduct(a, b uint64) *Quire {
	pa, sa := q.cfg.Decode(a)
	pb, sb := q.cfg.Decode(b)
	if sa == IsNaR || sb == IsNaR {
		q.nar = true
		return q
	}
	if sa == IsZero || sb == IsZero {
		return q
	}
	pa, pb = widen(pa), widen(pb)
	hi, lo := bits.Mul64(pa.Frac, pb.Frac)
	q.addShifted(hi, lo, pa.Scale+pb.Scale-2*workFracBits, pa.Neg == pb.Neg)
	return q
}

// Posit rounds the accumulated value to the nearest posit (the single
// rounding of a quire computation).
func (q *Quire) Posit() uint64 {
	if q.nar || q.err != nil {
		return q.cfg.NaR()
	}
	words := q.words
	neg := words[len(words)-1]>>63 == 1
	mag := make([]uint64, len(words))
	if neg {
		// mag = -value (two's complement negate).
		var carry uint64 = 1
		for i := range words {
			mag[i], carry = bits.Add64(^words[i], 0, carry)
		}
	} else {
		copy(mag, words)
	}
	// Find the most significant set bit.
	top := -1
	for i := len(mag) - 1; i >= 0; i-- {
		if mag[i] != 0 {
			top = i*64 + 63 - bits.LeadingZeros64(mag[i])
			break
		}
	}
	if top < 0 {
		return 0
	}
	scale := q.lsb + top
	// Extract workFracBits+1 bits starting below the top bit, plus sticky.
	frac := extractBits(mag, top-workFracBits, workFracBits+1)
	sticky := anyBitsBelow(mag, top-workFracBits)
	return q.cfg.Encode(Parts{Neg: neg, Scale: scale, Frac: frac, FracBits: workFracBits}, sticky)
}

// extractBits reads width bits starting at bit index from (may be
// negative, in which case the missing low bits are zeros).
func extractBits(words []uint64, from, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		idx := from + i
		if idx < 0 {
			continue
		}
		w := idx / 64
		if w >= len(words) {
			continue
		}
		if words[w]>>(uint(idx)%64)&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// anyBitsBelow reports whether any bit strictly below index limit is set.
func anyBitsBelow(words []uint64, limit int) bool {
	if limit <= 0 {
		return false
	}
	full := limit / 64
	for i := 0; i < full && i < len(words); i++ {
		if words[i] != 0 {
			return true
		}
	}
	rem := uint(limit % 64)
	if rem > 0 && full < len(words) {
		if words[full]&(1<<rem-1) != 0 {
			return true
		}
	}
	return false
}

// DotProduct computes the exactly accumulated dot product of two posit
// vectors with a single final rounding.
func (c Config) DotProduct(a, b []uint64) uint64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	q := NewQuire(c)
	for i := 0; i < n; i++ {
		q.AddProduct(a[i], b[i])
	}
	return q.Posit()
}

// Sum computes the exactly accumulated sum of a posit vector with a single
// final rounding.
func (c Config) Sum(ps []uint64) uint64 {
	q := NewQuire(c)
	for _, p := range ps {
		q.Add(p)
	}
	return q.Posit()
}
