// Package posit implements the posit number format (Posit Standard 2022,
// generalized to parametric es) for widths up to 64 bits.
//
// A posit<n,es> has four fields: a sign bit, a variable-length regime (a run
// of identical bits terminated by the opposite bit), up to es exponent bits,
// and the remaining bits of fraction with an implicit leading 1. Negative
// values are stored in two's complement. There are exactly two special
// values: zero (all bits clear) and NaR (sign bit set, all others clear).
//
// The package provides exact IEEE-754 <-> posit conversion with
// round-to-nearest-even (ties to even bit pattern, saturating at
// maxpos/minpos, never rounding a nonzero value to zero or to NaR),
// field-level decode/encode, correctly rounded arithmetic, and batch
// conversion helpers used by the compressibility study.
package posit

import (
	"fmt"
	"math"
	"math/bits"
)

// Config identifies a posit format: N total bits, ES maximum exponent bits.
// The paper's subject format is Config{32, 3}; the 2022 standard fixes ES=2.
type Config struct {
	N  uint // total bits, 2..64
	ES uint // maximum exponent field width, 0..6
}

// Standard configurations.
var (
	Posit8    = Config{8, 2}
	Posit16   = Config{16, 2}
	Posit32   = Config{32, 2}
	Posit64   = Config{64, 2}
	Posit32e3 = Config{32, 3} // the configuration studied in the paper
)

// Validate reports whether the configuration is supported.
func (c Config) Validate() error {
	if c.N < 3 || c.N > 64 {
		return fmt.Errorf("posit: n=%d out of range [3,64]", c.N)
	}
	if c.ES > 6 {
		return fmt.Errorf("posit: es=%d out of range [0,6]", c.ES)
	}
	return nil
}

// String returns "posit<n,es>".
func (c Config) String() string { return fmt.Sprintf("posit<%d,%d>", c.N, c.ES) }

// mask returns the n-bit mask for this config.
func (c Config) mask() uint64 {
	if c.N == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << c.N) - 1
}

// NaR returns the Not-a-Real bit pattern (sign bit set, all others clear).
func (c Config) NaR() uint64 { return uint64(1) << (c.N - 1) }

// Zero returns the zero bit pattern.
func (c Config) Zero() uint64 { return 0 }

// MaxPos returns the largest-magnitude positive posit (0 followed by ones).
func (c Config) MaxPos() uint64 { return c.NaR() - 1 }

// MinPos returns the smallest positive posit.
func (c Config) MinPos() uint64 { return 1 }

// MaxScale returns the exponent of MaxPos: (n-2)*2^es.
func (c Config) MaxScale() int { return int(c.N-2) << c.ES }

// IsNaR reports whether bits is the NaR pattern.
func (c Config) IsNaR(p uint64) bool { return p&c.mask() == c.NaR() }

// IsZero reports whether bits is the zero pattern.
func (c Config) IsZero(p uint64) bool { return p&c.mask() == 0 }

// Neg returns the posit negation (two's complement). NaR negates to NaR.
func (c Config) Neg(p uint64) uint64 { return (-p) & c.mask() }

// Abs returns the magnitude of p. NaR maps to NaR.
func (c Config) Abs(p uint64) uint64 {
	if c.IsNaR(p) {
		return p
	}
	if p>>(c.N-1)&1 == 1 {
		return c.Neg(p)
	}
	return p & c.mask()
}

// Compare orders posits: -1, 0, +1. NaR sorts below every real value
// (it occupies the most negative two's-complement pattern), which matches
// the standard's total order on bit patterns.
func (c Config) Compare(a, b uint64) int {
	sa := signExtend(a&c.mask(), c.N)
	sb := signExtend(b&c.mask(), c.N)
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	default:
		return 0
	}
}

func signExtend(v uint64, n uint) int64 {
	shift := 64 - n
	return int64(v<<shift) >> shift
}

// Parts is the field-level decomposition of a finite nonzero posit.
// The represented magnitude is Frac * 2^(Scale-FracBits) where Frac has its
// hidden (implicit) leading 1 at bit position FracBits, i.e.
// 2^FracBits <= Frac < 2^(FracBits+1).
type Parts struct {
	Neg      bool   // sign of the value
	Scale    int    // k*2^es + e (regime and exponent combined)
	Frac     uint64 // fraction including hidden bit
	FracBits uint   // number of explicit fraction bits in Frac
}

// Special classifies the two non-real posit patterns.
type Special int

// Special values returned by Decode.
const (
	Finite Special = iota // ordinary nonzero real value
	IsZero                // the zero pattern
	IsNaR                 // the Not-a-Real pattern
)

// Decode decomposes a posit bit pattern into sign/scale/fraction fields.
func (c Config) Decode(p uint64) (Parts, Special) {
	p &= c.mask()
	if p == 0 {
		return Parts{}, IsZero
	}
	if p == c.NaR() {
		return Parts{}, IsNaR
	}
	neg := p>>(c.N-1)&1 == 1
	if neg {
		p = c.Neg(p)
	}
	// Left-align the n-1 body bits (everything after the sign) at bit 63.
	body := p & (c.mask() >> 1)
	x := body << (64 - c.N + 1)
	nb := c.N - 1 // number of body bits

	var m uint // regime run length
	first := x >> 63
	if first == 1 {
		m = uint(bits.LeadingZeros64(^x))
	} else {
		m = uint(bits.LeadingZeros64(x))
	}
	if m > nb {
		m = nb
	}
	var k int
	if first == 1 {
		k = int(m) - 1
	} else {
		k = -int(m)
	}
	consumed := m
	if m < nb {
		consumed++ // the terminating opposite bit
	}
	rem := nb - consumed
	// Exponent: the stored bits are the most significant exponent bits;
	// truncated low bits are zero.
	eBits := c.ES
	if rem < eBits {
		eBits = rem
	}
	var e uint64
	if eBits > 0 {
		e = (x << consumed) >> (64 - eBits)
	}
	e <<= c.ES - eBits
	fb := rem - eBits
	var frac uint64
	if fb > 0 {
		frac = (x << (consumed + eBits)) >> (64 - fb)
	}
	frac |= 1 << fb
	return Parts{
		Neg:      neg,
		Scale:    k<<c.ES + int(e),
		Frac:     frac,
		FracBits: fb,
	}, Finite
}

// Encode rounds a sign/scale/fraction triple to the nearest posit
// (round-to-nearest, ties to even bit pattern, saturating).
//
// sticky indicates that nonzero value bits exist below Frac's LSB. When
// sticky is set, FracBits must be at least n so that the rounding position
// falls inside the explicit fraction; the arithmetic and conversion routines
// in this package always satisfy that.
func (c Config) Encode(pt Parts, sticky bool) uint64 {
	if pt.Frac == 0 {
		return 0
	}
	n, es := c.N, c.ES
	maxScale := c.MaxScale()
	if pt.Scale >= maxScale {
		return c.signed(c.MaxPos(), pt.Neg)
	}
	if pt.Scale < -maxScale {
		return c.signed(c.MinPos(), pt.Neg)
	}
	k := floorDiv(pt.Scale, 1<<es)
	e := uint64(pt.Scale - k<<es)

	// Regime bit string as an integer plus its length.
	var regime uint64
	var regimeLen uint
	if k >= 0 {
		regimeLen = uint(k) + 2
		regime = ((1 << (uint(k) + 1)) - 1) << 1 // k+1 ones then a zero
	} else {
		regimeLen = uint(-k) + 1
		regime = 1 // -k zeros then a one
	}

	// Assemble the unbounded magnitude pattern (after the sign bit) as a
	// 128-bit integer: regime | exponent | fraction.
	fb := pt.FracBits
	fracField := pt.Frac & ((uint64(1) << fb) - 1) // strip hidden bit
	// Keep the assembled pattern within 128 bits; dropped fraction bits
	// fold into sticky. This only triggers for extreme regimes on wide
	// posits, far below the rounding position.
	if over := int(regimeLen+es+fb) - 127; over > 0 {
		sticky = sticky || fracField&((1<<uint(over))-1) != 0
		fracField >>= uint(over)
		fb -= uint(over)
	}
	hi, lo := shl128(0, regime, es)
	hi, lo = or128(hi, lo, 0, e)
	hi, lo = shl128(hi, lo, fb)
	hi, lo = or128(hi, lo, 0, fracField)
	L := regimeLen + es + fb

	var pat uint64
	if L <= n-1 {
		pat = lo << (n - 1 - L)
		// sticky below an exact-width pattern cannot occur per the
		// documented precondition; truncation is then exact.
	} else {
		cut := L - (n - 1)
		pat = extract128(hi, lo, cut, n-1)
		guard := extractBit128(hi, lo, cut-1)
		below := sticky || lowNonzero128(hi, lo, cut-1)
		if guard == 1 && (below || pat&1 == 1) {
			pat++
		}
	}
	if pat == 0 {
		pat = 1 // never round a nonzero value to zero
	}
	return c.signed(pat, pt.Neg)
}

func (c Config) signed(pat uint64, neg bool) uint64 {
	if neg {
		return c.Neg(pat)
	}
	return pat
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// 128-bit helpers (hi holds bits 64..127).

func shl128(hi, lo uint64, s uint) (uint64, uint64) {
	switch {
	case s == 0:
		return hi, lo
	case s < 64:
		return hi<<s | lo>>(64-s), lo << s
	case s < 128:
		return lo << (s - 64), 0
	default:
		return 0, 0
	}
}

func or128(hi, lo, hi2, lo2 uint64) (uint64, uint64) {
	return hi | hi2, lo | lo2
}

// extract128 returns width bits of the 128-bit value starting at bit `from`
// (LSB-indexed), width <= 64.
func extract128(hi, lo uint64, from, width uint) uint64 {
	var v uint64
	switch {
	case from >= 64:
		v = hi >> (from - 64)
	case from == 0:
		v = lo
		if width < 64 {
			v &= (1 << width) - 1
		}
		return v
	default:
		v = lo>>from | hi<<(64-from)
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	return v
}

func extractBit128(hi, lo uint64, pos uint) uint64 {
	if pos >= 64 {
		return hi >> (pos - 64) & 1
	}
	return lo >> pos & 1
}

// lowNonzero128 reports whether any of the low `cnt` bits are nonzero.
func lowNonzero128(hi, lo uint64, cnt uint) bool {
	switch {
	case cnt == 0:
		return false
	case cnt <= 64:
		if cnt == 64 {
			return lo != 0
		}
		return lo&((1<<cnt)-1) != 0
	default:
		if lo != 0 {
			return true
		}
		c := cnt - 64
		if c >= 64 {
			return hi != 0
		}
		return hi&((1<<c)-1) != 0
	}
}

// FromFloat64 converts an IEEE-754 binary64 value to the nearest posit.
// NaN and +-Inf map to NaR; +-0 maps to zero (posits have a single zero).
func (c Config) FromFloat64(f float64) uint64 {
	b := math.Float64bits(f)
	exp := int(b >> 52 & 0x7FF)
	mant := b & ((1 << 52) - 1)
	neg := b>>63 == 1
	switch exp {
	case 0x7FF: // Inf or NaN
		return c.NaR()
	case 0: // zero or subnormal
		if mant == 0 {
			return 0
		}
		lz := bits.LeadingZeros64(mant) - 11 // zeros above the top set bit, within the 53-bit field
		mant <<= uint(lz)                    // hidden position now bit 52
		return c.Encode(Parts{
			Neg:      neg,
			Scale:    -1022 - lz, // == t - 1074 where t is the top set bit of the raw mantissa
			Frac:     mant,
			FracBits: 52,
		}, false)
	default:
		return c.Encode(Parts{
			Neg:      neg,
			Scale:    exp - 1023,
			Frac:     mant | 1<<52,
			FracBits: 52,
		}, false)
	}
}

// FromFloat32 converts an IEEE-754 binary32 value to the nearest posit.
// The widening to float64 is exact, so this performs a single rounding.
func (c Config) FromFloat32(f float32) uint64 {
	return c.FromFloat64(float64(f))
}

// ToFloat64 converts a posit to float64. For n <= 32 the conversion is exact
// (every posit32 value is representable in binary64); for wider posits the
// result is correctly rounded. NaR maps to NaN.
func (c Config) ToFloat64(p uint64) float64 {
	pt, sp := c.Decode(p)
	switch sp {
	case IsZero:
		return 0
	case IsNaR:
		return math.NaN()
	}
	v := math.Ldexp(float64(pt.Frac), pt.Scale-int(pt.FracBits))
	if pt.Neg {
		v = -v
	}
	return v
}

// ToFloat32 converts a posit to float32 with a final IEEE rounding.
func (c Config) ToFloat32(p uint64) float32 {
	return float32(c.ToFloat64(p))
}
