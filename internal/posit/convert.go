package posit

import "math/bits"

// Additional conversions and fused operations.

// Fma returns a*b + c with a single rounding (fused multiply-add),
// implemented through the quire.
func (c Config) Fma(a, b, addend uint64) uint64 {
	q := NewQuire(c)
	q.AddProduct(a, b)
	q.Add(addend)
	return q.Posit()
}

// ConvertFrom re-rounds a posit bit pattern from another configuration
// into c. Widening conversions between configurations with the same or
// larger fraction budget are exact (De Dinechin et al.: posits cast
// without error into sufficiently wider posits); narrowing conversions
// round to nearest.
func (c Config) ConvertFrom(src Config, p uint64) uint64 {
	pt, sp := src.Decode(p)
	switch sp {
	case IsZero:
		return 0
	case IsNaR:
		return c.NaR()
	}
	return c.Encode(pt, false)
}

// FromInt64 converts an integer to the nearest posit.
func (c Config) FromInt64(v int64) uint64 {
	if v == 0 {
		return 0
	}
	neg := v < 0
	mag := uint64(v)
	if neg {
		mag = uint64(-v) // note: MinInt64 negates to itself, which is correct as a magnitude
	}
	top := 63 - bits.LeadingZeros64(mag)
	// Normalize the magnitude so the hidden bit sits at workFracBits.
	var frac uint64
	sticky := false
	if top <= workFracBits {
		frac = mag << (workFracBits - uint(top))
	} else {
		drop := uint(top) - workFracBits
		sticky = mag&(1<<drop-1) != 0
		frac = mag >> drop
	}
	return c.Encode(Parts{Neg: neg, Scale: top, Frac: frac, FracBits: workFracBits}, sticky)
}

// ToInt64 converts a posit to the nearest int64 (ties to even), reporting
// whether the conversion was exact. NaR returns (0, false); values beyond
// the int64 range saturate and report false.
func (c Config) ToInt64(p uint64) (int64, bool) {
	pt, sp := c.Decode(p)
	switch sp {
	case IsZero:
		return 0, true
	case IsNaR:
		return 0, false
	}
	// value = Frac * 2^(Scale-FracBits)
	shift := pt.Scale - int(pt.FracBits)
	var mag uint64
	exact := true
	switch {
	case shift >= 0:
		if pt.Scale >= 63 {
			// -2^63 is exactly representable; everything else saturates.
			if pt.Neg && pt.Scale == 63 && pt.Frac == 1<<pt.FracBits {
				return -1 << 63, true
			}
			if pt.Neg {
				return -1 << 63, false
			}
			return 1<<63 - 1, false
		}
		mag = pt.Frac << uint(shift)
	default:
		drop := uint(-shift)
		if drop >= 64 {
			// scale <= FracBits-64 < -2, so |v| < 0.25: rounds to zero.
			return 0, false
		}
		mag = pt.Frac >> drop
		rem := pt.Frac & (1<<drop - 1)
		half := uint64(1) << (drop - 1)
		if rem > half || (rem == half && mag&1 == 1) {
			mag++
		}
		exact = rem == 0
	}
	if pt.Neg {
		return -int64(mag), exact
	}
	if mag > 1<<63-1 {
		return 1<<63 - 1, false
	}
	return int64(mag), exact
}
