package posit

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Double-precision batch support: the paper's future-work extension to
// 64-bit data. Works with any 64-bit posit configuration (posit<64,2> is
// the standard; posit<64,3> mirrors the paper's es choice).

// FromFloat64Slice converts float64 values to posit bit patterns under c.
func (c Config) FromFloat64Slice(dst []uint64, src []float64) []uint64 {
	if dst == nil {
		dst = make([]uint64, len(src))
	}
	parallelRange(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = c.FromFloat64(src[i])
		}
	})
	return dst[:len(src)]
}

// ToFloat64Slice converts posit bit patterns back to float64.
func (c Config) ToFloat64Slice(dst []float64, src []uint64) []float64 {
	if dst == nil {
		dst = make([]float64, len(src))
	}
	parallelRange(len(src), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = c.ToFloat64(src[i])
		}
	})
	return dst[:len(src)]
}

// RoundtripStats64 reports how many float64 values survive the
// float64 -> posit -> float64 roundtrip exactly.
func (c Config) RoundtripStats64(src []float64) ConvertStats {
	var st ConvertStats
	for _, f := range src {
		back := c.ToFloat64(c.FromFloat64(f))
		st.Total++
		switch {
		case math.IsNaN(f):
			if math.IsNaN(back) {
				st.Exact++
			}
		case math.Float64bits(f) == math.Float64bits(back):
			st.Exact++
		default:
			if e := math.Abs(back - f); e > st.MaxAbsE {
				st.MaxAbsE = e
			}
		}
	}
	return st
}

// EncodeFloat64LE serializes float64 values little-endian (.f64 layout).
func EncodeFloat64LE(src []float64) []byte {
	out := make([]byte, 8*len(src))
	for i, f := range src {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

// DecodeFloat64LE parses a little-endian .f64 byte stream.
func DecodeFloat64LE(p []byte) ([]float64, error) {
	if len(p)%8 != 0 {
		return nil, fmt.Errorf("posit: byte length %d not a multiple of 8", len(p))
	}
	out := make([]float64, len(p)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out, nil
}

// EncodeWords64LE serializes 64-bit posit patterns little-endian.
func EncodeWords64LE(src []uint64) []byte {
	out := make([]byte, 8*len(src))
	for i, w := range src {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out
}

// DecodeWords64LE parses a little-endian 64-bit word stream.
func DecodeWords64LE(p []byte) ([]uint64, error) {
	if len(p)%8 != 0 {
		return nil, fmt.Errorf("posit: byte length %d not a multiple of 8", len(p))
	}
	out := make([]uint64, len(p)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return out, nil
}
