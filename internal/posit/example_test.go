package posit_test

import (
	"fmt"

	"positbench/internal/posit"
)

func ExampleConfig_FromFloat64() {
	cfg := posit.Posit32e3
	p := cfg.FromFloat64(1.5)
	fmt.Printf("%#x -> %g\n", p, cfg.ToFloat64(p))
	// Output: 0x42000000 -> 1.5
}

func ExampleConfig_Add() {
	cfg := posit.Posit32e3
	a := cfg.FromFloat64(0.1) // rounded: 0.1 is not a binary fraction
	b := cfg.FromFloat64(0.2)
	fmt.Printf("%.9f\n", cfg.ToFloat64(cfg.Add(a, b)))
	// Output: 0.299999997
}

func ExampleQuire() {
	cfg := posit.Posit32e3
	q := posit.NewQuire(cfg)
	big := cfg.FromFloat64(1e10)
	q.AddProduct(big, big) // 1e20: far beyond posit32 precision
	q.Add(cfg.FromFloat64(1))
	q.SubProduct(big, big) // exact cancellation inside the quire
	fmt.Println(cfg.ToFloat64(q.Posit()))
	// Output: 1
}

func ExampleConfig_RoundtripStats() {
	cfg := posit.Posit32e3
	stats := cfg.RoundtripStats([]float32{1, 2.5, -0.125})
	fmt.Printf("%.0f%% exact\n", stats.PrecisePct())
	// Output: 100% exact
}

func ExampleP32e3() {
	a := posit.FromFloat64P32e3(3)
	b := posit.FromFloat64P32e3(4)
	hyp := a.Mul(a).Add(b.Mul(b)).Sqrt()
	fmt.Println(hyp)
	// Output: 5
}
