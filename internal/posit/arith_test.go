package posit

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// ratOf returns the exact rational value of a finite posit.
func ratOf(c Config, p uint64) *big.Rat {
	pt, sp := c.Decode(p)
	if sp != Finite {
		if sp == IsZero {
			return new(big.Rat)
		}
		panic("ratOf: NaR")
	}
	r := new(big.Rat).SetInt64(int64(pt.Frac))
	e := pt.Scale - int(pt.FracBits)
	two := big.NewRat(2, 1)
	half := big.NewRat(1, 2)
	for i := 0; i < e; i++ {
		r.Mul(r, two)
	}
	for i := 0; i > e; i-- {
		r.Mul(r, half)
	}
	if pt.Neg {
		r.Neg(r)
	}
	return r
}

// nearestPosit finds the correctly rounded posit for an exact rational,
// independently of the implementation under test. Posit rounding (per the
// standard and softposit/cppposit) is round-to-nearest-even in *encoding*
// space: truncate the unbounded encoding at n bits; the rounding boundary
// between consecutive n-bit patterns p and p+1 is the value of the
// (n+1)-bit posit whose pattern is p<<1|1 (the truncation plus a guard 1).
// Ties go to the even pattern; results saturate at maxpos/minpos and a
// nonzero value never rounds to zero.
func nearestPosit(c Config, x *big.Rat) uint64 {
	if x.Sign() == 0 {
		return 0
	}
	neg := x.Sign() < 0
	ax := new(big.Rat).Abs(x)
	finish := func(p uint64) uint64 {
		if neg {
			return c.Neg(p)
		}
		return p
	}
	// Find the floor pattern: largest positive pattern with value <= ax.
	f, _ := ax.Float64()
	p := c.Abs(c.FromFloat64(f))
	if c.IsNaR(p) || c.IsZero(p) {
		p = c.MinPos()
	}
	for p > c.MinPos() && ratOf(c, p).Cmp(ax) > 0 {
		p--
	}
	for p < c.MaxPos() && ratOf(c, p+1).Cmp(ax) <= 0 {
		p++
	}
	if ratOf(c, p).Cmp(ax) == 0 {
		return finish(p)
	}
	if ratOf(c, c.MinPos()).Cmp(ax) > 0 {
		return finish(c.MinPos()) // below minpos: never round to zero
	}
	if p == c.MaxPos() {
		return finish(p) // above maxpos: saturate
	}
	ext := Config{c.N + 1, c.ES}
	boundary := ratOf(ext, p<<1|1)
	switch ax.Cmp(boundary) {
	case -1:
		return finish(p)
	case 1:
		return finish(p + 1)
	default: // tie: even pattern
		if p&1 == 0 {
			return finish(p)
		}
		return finish(p + 1)
	}
}

// Exhaustive posit8 addition and multiplication against the exact rational
// reference.
func TestExhaustiveAddMul8(t *testing.T) {
	c := Posit8
	var reals []uint64
	for p := uint64(0); p < 256; p++ {
		if !c.IsNaR(p) {
			reals = append(reals, p)
		}
	}
	for _, a := range reals {
		ra := ratOf(c, a)
		for _, b := range reals {
			rb := ratOf(c, b)
			sum := new(big.Rat).Add(ra, rb)
			if got, want := c.Add(a, b), nearestPosit(c, sum); got != want {
				t.Fatalf("Add(%#x,%#x) = %#x, want %#x (exact %v)", a, b, got, want, sum)
			}
			prod := new(big.Rat).Mul(ra, rb)
			if got, want := c.Mul(a, b), nearestPosit(c, prod); got != want {
				t.Fatalf("Mul(%#x,%#x) = %#x, want %#x (exact %v)", a, b, got, want, prod)
			}
		}
	}
}

func TestExhaustiveDiv8(t *testing.T) {
	c := Posit8
	for a := uint64(0); a < 256; a++ {
		if c.IsNaR(a) {
			continue
		}
		ra := ratOf(c, a)
		for b := uint64(0); b < 256; b++ {
			if c.IsNaR(b) {
				continue
			}
			got := c.Div(a, b)
			if c.IsZero(b) {
				if !c.IsNaR(got) {
					t.Fatalf("Div(%#x,0) = %#x, want NaR", a, got)
				}
				continue
			}
			q := new(big.Rat).Quo(ra, ratOf(c, b))
			if want := nearestPosit(c, q); got != want {
				t.Fatalf("Div(%#x,%#x) = %#x, want %#x (exact %v)", a, b, got, want, q)
			}
		}
	}
}

func TestSampledArith16(t *testing.T) {
	c := Posit16
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		a := uint64(rng.Intn(1 << 16))
		b := uint64(rng.Intn(1 << 16))
		if c.IsNaR(a) || c.IsNaR(b) {
			continue
		}
		ra, rb := ratOf(c, a), ratOf(c, b)
		if got, want := c.Add(a, b), nearestPosit(c, new(big.Rat).Add(ra, rb)); got != want {
			t.Fatalf("Add(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
		if got, want := c.Sub(a, b), nearestPosit(c, new(big.Rat).Sub(ra, rb)); got != want {
			t.Fatalf("Sub(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
		if got, want := c.Mul(a, b), nearestPosit(c, new(big.Rat).Mul(ra, rb)); got != want {
			t.Fatalf("Mul(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
		if !c.IsZero(b) {
			if got, want := c.Div(a, b), nearestPosit(c, new(big.Rat).Quo(ra, rb)); got != want {
				t.Fatalf("Div(%#x,%#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestArithSpecials(t *testing.T) {
	c := Posit16
	one := c.FromFloat64(1)
	nar := c.NaR()
	for _, op := range []func(a, b uint64) uint64{c.Add, c.Sub, c.Mul, c.Div} {
		if !c.IsNaR(op(nar, one)) || !c.IsNaR(op(one, nar)) {
			t.Fatal("NaR must propagate")
		}
	}
	if c.Add(0, one) != one || c.Add(one, 0) != one {
		t.Fatal("additive identity")
	}
	if !c.IsZero(c.Mul(0, one)) {
		t.Fatal("multiplicative zero")
	}
	if !c.IsNaR(c.Div(one, 0)) {
		t.Fatal("x/0 must be NaR")
	}
	if !c.IsZero(c.Div(0, one)) {
		t.Fatal("0/x must be zero")
	}
	if !c.IsZero(c.Sub(one, one)) {
		t.Fatal("exact cancellation")
	}
}

func TestAddCommutesAndNegates(t *testing.T) {
	c := Posit32e3
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		a := uint64(rng.Uint32())
		b := uint64(rng.Uint32())
		if c.IsNaR(a) || c.IsNaR(b) {
			continue
		}
		if c.Add(a, b) != c.Add(b, a) {
			t.Fatalf("Add not commutative for %#x,%#x", a, b)
		}
		if c.Mul(a, b) != c.Mul(b, a) {
			t.Fatalf("Mul not commutative for %#x,%#x", a, b)
		}
		// -(a+b) == (-a)+(-b)
		if c.Neg(c.Add(a, b)) != c.Add(c.Neg(a), c.Neg(b)) {
			t.Fatalf("negation symmetry broken for %#x,%#x", a, b)
		}
	}
}

func TestAddFarApartMagnitudes(t *testing.T) {
	c := Posit32e3
	big := c.FromFloat64(math.Ldexp(1.5, 100))
	tiny := c.FromFloat64(math.Ldexp(1.25, -100))
	if got := c.Add(big, tiny); got != big {
		t.Fatalf("big+tiny = %#x, want big %#x", got, big)
	}
	if got := c.Add(big, c.Neg(tiny)); got != big {
		t.Fatalf("big-tiny = %#x, want big %#x", got, big)
	}
	if got := c.Add(tiny, big); got != big {
		t.Fatalf("tiny+big = %#x, want big %#x", got, big)
	}
}

func TestSqrt(t *testing.T) {
	for _, c := range []Config{Posit16, Posit32, Posit32e3} {
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 2000; trial++ {
			f := math.Ldexp(rng.Float64()+1, rng.Intn(60)-30)
			p := c.FromFloat64(f)
			got := c.Sqrt(p)
			// Reference: exact square root via big.Float, then nearest posit.
			x := new(big.Float).SetPrec(200)
			x.SetRat(ratOf(c, p))
			x.Sqrt(x)
			r, _ := x.Rat(nil) // may be inexact only below posit precision... use high-precision float compare instead
			want := nearestPosit(c, r)
			if got != want {
				// Allow the reference rational rounding ambiguity only if
				// the two candidates are adjacent and equidistant.
				gv, wv := c.ToFloat64(got), c.ToFloat64(want)
				t.Fatalf("%v: Sqrt(%g) = %#x (%g), want %#x (%g)", c, c.ToFloat64(p), got, gv, want, wv)
			}
		}
	}
	c := Posit16
	if !c.IsNaR(c.Sqrt(c.FromFloat64(-2))) {
		t.Fatal("sqrt of negative must be NaR")
	}
	if !c.IsZero(c.Sqrt(0)) {
		t.Fatal("sqrt(0)")
	}
	if got := c.Sqrt(c.FromFloat64(4)); c.ToFloat64(got) != 2 {
		t.Fatalf("sqrt(4) = %g", c.ToFloat64(got))
	}
	if got := c.Sqrt(c.FromFloat64(9)); c.ToFloat64(got) != 3 {
		t.Fatalf("sqrt(9) = %g", c.ToFloat64(got))
	}
}

func TestExhaustiveSqrt16(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := Posit16
	for p := uint64(0); p < 1<<16; p++ {
		if c.IsNaR(p) {
			continue
		}
		pt, sp := c.Decode(p)
		if sp == Finite && pt.Neg {
			if !c.IsNaR(c.Sqrt(p)) {
				t.Fatalf("sqrt(negative %#x) must be NaR", p)
			}
			continue
		}
		got := c.Sqrt(p)
		x := new(big.Float).SetPrec(300)
		x.SetRat(ratOf(c, p))
		x.Sqrt(x)
		r, _ := x.Rat(nil)
		if r == nil {
			// Irrational root: Rat returns nil only for infinities, not here;
			// fall back to a high-precision approximation.
			t.Fatalf("unexpected nil rat for %#x", p)
		}
		if want := nearestPosit(c, r); got != want {
			t.Fatalf("Sqrt(%#x) = %#x, want %#x", p, got, want)
		}
	}
}
