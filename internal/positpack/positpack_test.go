package positpack

import (
	"bytes"
	"math/rand"
	"positbench/internal/compress/codectest"
	"testing"
	"testing/quick"

	"positbench/internal/compress"
	"positbench/internal/compress/gzipc"
	"positbench/internal/posit"
	"positbench/internal/sdrbench"
)

func mustNew(t testing.TB, cfg posit.Config) *Codec {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(posit.Posit16); err == nil {
		t.Fatal("16-bit config accepted")
	}
	if _, err := New(posit.Config{N: 32, ES: 9}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := New(posit.Posit32e3); err != nil {
		t.Fatal(err)
	}
}

// split/join must be a bijection over all 32-bit patterns.
func TestSplitJoinBijection(t *testing.T) {
	for _, cfg := range []posit.Config{posit.Posit32, posit.Posit32e3} {
		c := mustNew(t, cfg)
		// Edge patterns plus random sweep.
		patterns := []uint32{0, 1, 2, 0x7FFFFFFF, 0x80000000, 0x80000001,
			0xFFFFFFFF, 0x40000000, 0xC0000000, 0x00000003, 0xFFFFFFFE}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 200000; i++ {
			patterns = append(patterns, rng.Uint32())
		}
		for _, p := range patterns {
			f := c.split(p)
			if got := c.join(f); got != p {
				t.Fatalf("%v: split/join %#x -> %+v -> %#x", cfg, p, f, got)
			}
		}
	}
}

func TestSplitJoinQuick(t *testing.T) {
	c := mustNew(t, posit.Posit32e3)
	f := func(p uint32) bool { return c.join(c.split(p)) == p }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundtrip(t *testing.T) {
	c := mustNew(t, posit.Posit32e3)
	cases := [][]uint32{
		nil,
		{0},
		{uint32(posit.Posit32e3.NaR())},
		{0x40000000, 0x40000001, 0xC0000000},
	}
	rng := rand.New(rand.NewSource(2))
	random := make([]uint32, 5000)
	for i := range random {
		random[i] = rng.Uint32()
	}
	cases = append(cases, random)
	for i, words := range cases {
		src := posit.EncodeWordsLE(words)
		if _, err := compress.Roundtrip(c, src); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
	if _, err := c.Compress([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestCompressesPositData(t *testing.T) {
	// On a smooth posit-converted field, positpack must compress, and it
	// should beat a byte-oriented general-purpose codec, demonstrating the
	// value of field awareness (the paper's future-work hypothesis).
	spec, err := sdrbench.ByName("einspline.f32")
	if err != nil {
		t.Fatal(err)
	}
	floats := spec.Generate(1 << 15)
	words := posit.Posit32e3.FromFloat32Slice(nil, floats)
	src := posit.EncodeWordsLE(words)

	c := mustNew(t, posit.Posit32e3)
	packLen, err := compress.Roundtrip(c, src)
	if err != nil {
		t.Fatal(err)
	}
	if packLen >= len(src) {
		t.Fatalf("no compression: %d -> %d", len(src), packLen)
	}
	gzLen, err := compress.Roundtrip(gzipc.New(), src)
	if err != nil {
		t.Fatal(err)
	}
	if packLen >= gzLen {
		t.Errorf("positpack (%d) should beat gzip (%d) on smooth posit data", packLen, gzLen)
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	c := mustNew(t, posit.Posit32e3)
	if _, err := c.Decompress(nil); err == nil {
		t.Fatal("empty accepted")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		garbage := make([]byte, rng.Intn(200))
		rng.Read(garbage)
		c.Decompress(garbage) // must not panic
	}
	// Huge declared count must be rejected before allocation.
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := c.Decompress(big); err == nil {
		t.Fatal("huge count accepted")
	}
}

func TestCrossConfigSafety(t *testing.T) {
	// Data packed under es=3 must decode identically under the same config
	// but is allowed to decode differently (not crash) under es=2.
	c3 := mustNew(t, posit.Posit32e3)
	words := []uint32{0x40000000, 0x12345678, 0x87654321}
	src := posit.EncodeWordsLE(words)
	comp, err := c3.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c3.Decompress(comp)
	if err != nil || !bytes.Equal(back, src) {
		t.Fatal("same-config roundtrip failed")
	}
	c2 := mustNew(t, posit.Posit32)
	c2.Decompress(comp) // must not panic
}

func BenchmarkCompress(b *testing.B) {
	spec, err := sdrbench.ByName("PRES-98x1200x1200.f32")
	if err != nil {
		b.Fatal(err)
	}
	floats := spec.Generate(1 << 16)
	src := posit.EncodeWordsLE(posit.Posit32e3.FromFloat32Slice(nil, floats))
	c := mustNew(b, posit.Posit32e3)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFaultInjection(t *testing.T) {
	codectest.FaultInjection(t, mustNew(t, posit.Posit32e3))
}
