// Package positpack implements a special-purpose lossless compressor for
// 32-bit posit data — the tool the paper's conclusion calls for ("once
// lossless ... special-purpose compressors for posits have been developed").
//
// General-purpose compressors see a posit file as opaque bytes. positpack
// instead decodes every word into its four fields and codes each as its own
// stream, exploiting posit-specific structure:
//
//   - sign bits: one bit per value, run-length friendly;
//   - regime lengths: tightly clustered for natural data (values near 1.0
//     have 2-bit regimes), so a Huffman code over lengths is tiny;
//   - exponent bits: es bits, biased toward a few values per regime;
//   - fractions: delta-coded between neighbors (field smoothness survives
//     the posit re-encoding) and bit-packed to each value's true width.
//
// The format is self-contained and lossless for every bit pattern,
// including NaR and zero.
package positpack

import (
	"fmt"
	"math/bits"

	"positbench/internal/bitio"
	"positbench/internal/compress"
	"positbench/internal/huffman"
	"positbench/internal/posit"
)

// Codec is the special-purpose posit<32,es> compressor.
type Codec struct {
	cfg posit.Config
}

// New returns a codec for the given 32-bit posit configuration.
func New(cfg posit.Config) (*Codec, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.N != 32 {
		return nil, fmt.Errorf("positpack: only 32-bit posits are supported, got %v", cfg)
	}
	return &Codec{cfg: cfg}, nil
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return "positpack" }

// Info implements compress.Describer.
func (c *Codec) Info() compress.Info {
	return compress.Info{Name: "positpack", Version: c.cfg.String(), Source: "special-purpose posit field compressor (this work's extension)"}
}

// fields is the per-word decomposition used by the coder. run is the
// number of identical regime bits (1..31); the terminator bit exists iff
// run < 31. Special patterns use kind 1 (zero) or 2 (NaR).
type fields struct {
	kind     uint8 // 0 finite, 1 zero, 2 NaR
	sign     uint8
	run      uint8  // regime run length
	regime1  uint8  // value of the regime bits (0 or 1)
	exp      uint32 // stored (possibly truncated) exponent bits
	expBits  uint8
	frac     uint32 // explicit fraction bits
	fracBits uint8
}

// widths derives the exponent and fraction field widths from the regime.
func (c *Codec) widths(run uint8) (expBits, fracBits uint8) {
	consumed := run
	if run < 31 {
		consumed++ // terminator bit
	}
	rem := uint8(31) - consumed
	eb := uint8(c.cfg.ES)
	if rem < eb {
		eb = rem
	}
	return eb, rem - eb
}

// split decomposes the raw two's-complement pattern without rounding: this
// is a bijective re-layout, not a numeric transform.
func (c *Codec) split(p uint32) fields {
	if p == 0 {
		return fields{kind: 1}
	}
	if uint64(p) == c.cfg.NaR() {
		return fields{kind: 2}
	}
	var f fields
	f.sign = uint8(p >> 31)
	mag := p
	if f.sign == 1 {
		mag = -p // two's complement magnitude pattern
	}
	body := mag << 1 // 31 body bits, left-aligned at bit 31
	first := body >> 31
	f.regime1 = uint8(first)
	run := uint8(1)
	for int(run) < 31 && body<<run>>31 == first {
		run++
	}
	f.run = run
	f.expBits, f.fracBits = c.widths(run)
	consumed := run
	if run < 31 {
		consumed++
	}
	if f.expBits > 0 {
		f.exp = body << consumed >> (32 - uint32(f.expBits))
	}
	if f.fracBits > 0 {
		f.frac = body << (consumed + f.expBits) >> (32 - uint32(f.fracBits))
	}
	return f
}

// join re-assembles the raw pattern from fields; the exact inverse of split.
func (c *Codec) join(f fields) uint32 {
	switch f.kind {
	case 1:
		return 0
	case 2:
		return uint32(c.cfg.NaR())
	}
	var body uint32
	if f.regime1 == 1 {
		body = 1<<f.run - 1
	}
	if f.run < 31 {
		body = body<<1 | uint32(1-f.regime1)
	}
	body = body<<f.expBits | f.exp
	body = body<<f.fracBits | f.frac
	// body now holds exactly 31 bits; the sign bit of the magnitude is 0.
	if f.sign == 1 {
		return -body
	}
	return body
}

// Compress implements compress.Codec. The input must be a little-endian
// stream of 32-bit posit words.
func (c *Codec) Compress(src []byte) ([]byte, error) {
	words, err := posit.DecodeWordsLE(src)
	if err != nil {
		return nil, fmt.Errorf("positpack: %w", err)
	}
	out := bitio.PutUvarint(nil, uint64(len(words)))

	// Pass 1: split and collect statistics. Symbol space for the
	// length/kind stream: 0 = zero, 1 = NaR, 2+r = finite with regimeLen r
	// and regime1=0, 34+r = finite with regime1=1.
	fs := make([]fields, len(words))
	freqs := make([]int, 2+32+32)
	for i, w := range words {
		f := c.split(w)
		fs[i] = f
		freqs[symbolOf(f)]++
	}
	lengths, err := huffman.BuildLengths(freqs, huffman.MaxBits)
	if err != nil {
		return nil, err
	}
	enc, err := huffman.NewEncoder(lengths)
	if err != nil {
		return nil, err
	}
	w := bitio.NewWriter(len(src)/2 + 64)
	if err := huffman.WriteLengths(w, lengths); err != nil {
		return nil, err
	}
	// Stream 1: per-value (kind, regime shape) symbols.
	for _, f := range fs {
		enc.Encode(w, symbolOf(f))
	}
	// Stream 2: sign bits of finite values.
	for _, f := range fs {
		if f.kind == 0 {
			w.WriteBit(uint(f.sign))
		}
	}
	// Stream 3: exponent bits.
	for _, f := range fs {
		if f.kind == 0 && f.expBits > 0 {
			w.WriteBits(uint64(f.exp), uint(f.expBits))
		}
	}
	// Stream 4: fractions, XOR-delta against the previous same-width
	// fraction so smooth data yields small deltas, then coded as a
	// Huffman-compressed significant-bit count followed by the bits below
	// the leading one.
	// Quantized sources leave common trailing zeros in every fraction of a
	// given width; factor them out per width class before delta coding.
	var prevFrac [32]uint32 // previous fraction per width
	var tz [32]uint8
	for i := range tz {
		tz[i] = 32
	}
	deltas := make([]uint32, 0, len(fs))
	widths := make([]uint8, 0, len(fs))
	for _, f := range fs {
		if f.kind != 0 || f.fracBits == 0 {
			continue
		}
		d := f.frac ^ prevFrac[f.fracBits]
		prevFrac[f.fracBits] = f.frac
		deltas = append(deltas, d)
		widths = append(widths, f.fracBits)
		if d != 0 {
			if t := uint8(bits.TrailingZeros32(d)); t < tz[f.fracBits] {
				tz[f.fracBits] = t
			}
		}
	}
	lenFreqs := make([]int, 33)
	for i, d := range deltas {
		lenFreqs[bits.Len32(d>>tz[widths[i]])]++
	}
	lenLengths, err := huffman.BuildLengths(lenFreqs, huffman.MaxBits)
	if err != nil {
		return nil, err
	}
	lenEnc, err := huffman.NewEncoder(lenLengths)
	if err != nil {
		return nil, err
	}
	if err := huffman.WriteLengths(w, lenLengths); err != nil {
		return nil, err
	}
	for i := 1; i < 32; i++ {
		t := tz[i]
		if t > 31 {
			t = 31
		}
		w.WriteBits(uint64(t), 5)
	}
	for i, d := range deltas {
		d >>= tz[widths[i]]
		n := bits.Len32(d)
		lenEnc.Encode(w, n)
		if n > 1 {
			w.WriteBits(uint64(d)&(1<<uint(n-1)-1), uint(n-1))
		}
	}
	return append(out, w.Bytes()...), nil
}

func symbolOf(f fields) int {
	switch f.kind {
	case 1:
		return 0
	case 2:
		return 1
	}
	return 2 + int(f.regime1)*32 + int(f.run)
}

// Decompress implements compress.Codec with default decode limits.
func (c *Codec) Decompress(comp []byte) ([]byte, error) {
	return c.DecompressLimits(comp, compress.DecodeLimits{})
}

// DecompressLimits implements compress.Limited: the declared word count is
// validated against both the input size and the resolved output cap before
// any allocation proportional to it.
func (c *Codec) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	n64, used, err := bitio.Uvarint(comp)
	if err != nil {
		return nil, fmt.Errorf("positpack: %w", err)
	}
	if n64 > uint64(len(comp))*8 { // each value costs >= 1 bit in the symbol stream
		return nil, compress.Errorf(compress.ErrCorrupt, "positpack: value count %d exceeds input", n64)
	}
	if err := lim.CheckDeclared(4*n64, len(comp)); err != nil {
		return nil, fmt.Errorf("positpack: %w", err)
	}
	comp = comp[used:]
	n := int(n64)
	r := bitio.NewReader(comp)
	if n > r.Remaining() {
		return nil, compress.Errorf(compress.ErrCorrupt, "positpack: value count %d exceeds input", n)
	}
	lengths, err := huffman.ReadLengths(r, 2+32+32)
	if err != nil {
		return nil, fmt.Errorf("positpack: %w", err)
	}
	dec, err := huffman.NewDecoder(lengths)
	if err != nil {
		return nil, fmt.Errorf("positpack: %w", err)
	}
	fs := make([]fields, n)
	for i := range fs {
		sym, err := dec.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("positpack: symbols: %w", err)
		}
		switch {
		case sym == 0:
			fs[i] = fields{kind: 1}
		case sym == 1:
			fs[i] = fields{kind: 2}
		case sym >= 34:
			fs[i] = fields{regime1: 1, run: uint8(sym - 34)}
		default:
			fs[i] = fields{regime1: 0, run: uint8(sym - 2)}
		}
		if fs[i].kind == 0 {
			run := fs[i].run
			if run < 1 || run > 31 || (run == 31 && fs[i].regime1 == 0) {
				return nil, compress.Errorf(compress.ErrCorrupt, "positpack: bad regime run %d", run)
			}
			fs[i].expBits, fs[i].fracBits = c.widths(run)
		}
	}
	// Sign bits are one per finite value; decode them from the lookahead
	// word in register-width batches instead of paying ReadBit's refill
	// check on every bit.
	for i := 0; i < n; {
		if fs[i].kind != 0 {
			i++
			continue
		}
		w, avail := r.Lookahead()
		if avail == 0 {
			return nil, fmt.Errorf("positpack: signs: %w", bitio.ErrUnexpectedEOF)
		}
		var used uint
		for i < n && used < avail {
			if fs[i].kind == 0 {
				fs[i].sign = uint8(w >> 63)
				w <<= 1
				used++
			}
			i++
		}
		r.Drop(used)
	}
	for i := range fs {
		if fs[i].kind == 0 && fs[i].expBits > 0 {
			v, err := r.ReadBits(uint(fs[i].expBits))
			if err != nil {
				return nil, fmt.Errorf("positpack: exponents: %w", err)
			}
			fs[i].exp = uint32(v)
		}
	}
	lenLengths, err := huffman.ReadLengths(r, 33)
	if err != nil {
		return nil, fmt.Errorf("positpack: delta table: %w", err)
	}
	lenDec, err := huffman.NewDecoder(lenLengths)
	if err != nil {
		return nil, fmt.Errorf("positpack: delta table: %w", err)
	}
	var tz [32]uint8
	for i := 1; i < 32; i++ {
		v, err := r.ReadBits(5)
		if err != nil {
			return nil, fmt.Errorf("positpack: tz table: %w", err)
		}
		tz[i] = uint8(v)
	}
	var prevFrac [32]uint32
	for i := range fs {
		if fs[i].kind != 0 || fs[i].fracBits == 0 {
			continue
		}
		nBits, err := lenDec.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("positpack: fractions: %w", err)
		}
		shift := tz[fs[i].fracBits]
		if nBits+int(shift) > 32 {
			return nil, compress.Errorf(compress.ErrCorrupt, "positpack: delta wider than fraction field")
		}
		var d uint32
		if nBits > 0 {
			d = 1 << uint(nBits-1)
			if nBits > 1 {
				low, err := r.ReadBits(uint(nBits - 1))
				if err != nil {
					return nil, fmt.Errorf("positpack: fractions: %w", err)
				}
				d |= uint32(low)
			}
		}
		d <<= shift
		frac := d ^ prevFrac[fs[i].fracBits]
		prevFrac[fs[i].fracBits] = frac
		fs[i].frac = frac
	}
	words := make([]uint32, n)
	for i, f := range fs {
		words[i] = c.join(f)
	}
	return posit.EncodeWordsLE(words), nil
}

var _ compress.Codec = (*Codec)(nil)
var _ compress.Describer = (*Codec)(nil)
var _ compress.Limited = (*Codec)(nil)
