package positpack

import (
	"bytes"
	"testing"

	"positbench/internal/compress"
	"positbench/internal/compress/codectest"
	"positbench/internal/compress/gzipc"
	"positbench/internal/compress/lz4c"
	"positbench/internal/posit"
	"positbench/internal/sdrbench"
)

func TestV2Conformance(t *testing.T) { codectest.Run(t, NewV2()) }

// positStream converts sdrbench input i to a posit<32,3> word byte stream.
func positStream(t testing.TB, i, n int) []byte {
	t.Helper()
	vals := sdrbench.Inputs()[i].Generate(n)
	return posit.EncodeWordsLE(posit.Posit32e3.FromFloat32Slice(nil, vals))
}

// v2 must compress posit-encoded sdrbench fields and roundtrip exactly.
func TestV2CompressesPositData(t *testing.T) {
	c := NewV2()
	for _, i := range []int{0, 2, 6, 10} {
		data := positStream(t, i, 32<<10)
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		r := compress.Ratio(len(data), len(comp))
		t.Logf("input %d: fpc-posit ratio %.3f", i, r)
		if r < 1.1 {
			t.Errorf("input %d: ratio %.3f, want >= 1.1 on posit words", i, r)
		}
		back, err := c.Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Errorf("input %d: roundtrip mismatch", i)
		}
	}
}

// Unlike v1, v2 has no alignment precondition: arbitrary byte lengths
// roundtrip, which is what qualifies it for the registry.
func TestV2ArbitraryLengths(t *testing.T) {
	c := NewV2()
	base := positStream(t, 1, 1024)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 4093, 4096} {
		data := base[:n]
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		back, err := c.Decompress(comp)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(back, data) {
			t.Errorf("n=%d: roundtrip mismatch", n)
		}
	}
}

// v2's position in the family: it must beat the general-purpose byte-LZ
// registry codecs on posit streams they cannot model, and on this MD field
// the value predictor also edges out v1's field split (v1 keeps the ratio
// crown on the smoothest CESM fields, where its regime Huffman shines; v2
// is the 2-3x faster, registry-shaped member either way). All inputs are
// deterministic, so these orderings are stable pins, not benchmarks.
func TestV2RatioAgainstFamilyAndRegistry(t *testing.T) {
	data := positStream(t, 2, 64<<10) // EXAALT dataset1.y: smooth MD field
	v2 := NewV2()
	c2, err := v2.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	r2 := compress.Ratio(len(data), len(c2))

	cl, err := lz4c.New().Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := gzipc.New().Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	rl := compress.Ratio(len(data), len(cl))
	rg := compress.Ratio(len(data), len(cg))

	v1 := mustNew(t, posit.Posit32e3)
	c1, err := v1.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	r1 := compress.Ratio(len(data), len(c1))

	t.Logf("EXAALT posit words: v2 %.3f vs lz4 %.3f, gzip %.3f, v1 %.3f", r2, rl, rg, r1)
	if r2 <= rl {
		t.Errorf("v2 ratio %.3f does not beat lz4 %.3f on posit words", r2, rl)
	}
	if r2 <= rg {
		t.Errorf("v2 ratio %.3f does not beat gzip %.3f on posit words", r2, rg)
	}
	if r2 <= r1 {
		t.Errorf("v2 ratio %.3f no longer beats v1 %.3f on the MD field", r2, r1)
	}
}

// The registry wraps v2 in the container frame; sanity-check the framed
// stream identifies itself and enforces limits end to end.
func TestV2InfoAndLight(t *testing.T) {
	c := NewV2()
	if c.Name() != "fpc-posit" {
		t.Fatalf("name %q", c.Name())
	}
	info := c.Info()
	if info.Name != "fpc-posit" || info.Version == "" || info.Source == "" {
		t.Fatalf("incomplete info: %+v", info)
	}
	if !compress.DecodeIsLight(c) {
		t.Fatal("fpc-posit must advertise a light decode path")
	}
}

func FuzzV2Roundtrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{1, 2, 3})
	codectest.FuzzRoundtrip(f, NewV2())
}

func FuzzV2Decompress(f *testing.F) {
	codectest.FuzzDecompress(f, NewV2())
}
