package positpack

import (
	"positbench/internal/compress"
	"positbench/internal/predict"
)

// V2 is the second-generation posit compressor "fpc-posit": instead of v1's
// field split (sign/regime/exponent/fraction streams), it runs the FCM/DFCM
// value predictors over the posit<32,3> word stream and codes the XOR
// residuals as sign/LZC/mantissa planes with a per-block Huffman code over
// the LZC buckets (internal/predict with Split mode). Posit words reward
// prediction more than IEEE words: the regime unary prefix makes the top
// bits of nearby values agree, so residual leading zeros run deeper.
//
// Unlike v1 it accepts inputs of any byte length (a trailing partial word
// travels raw), which is what lets it live in the registry and inherit the
// container frame, the parallel chunk engine, and the decode limits.
type V2 struct {
	inner *predict.Codec
}

// NewV2 returns the "fpc-posit" codec.
func NewV2() *V2 {
	return &V2{inner: predict.NewNamed("fpc-posit", predict.Config{Split: true})}
}

// Name implements compress.Codec.
func (v *V2) Name() string { return v.inner.Name() }

// Info implements compress.Describer.
func (v *V2) Info() compress.Info {
	return compress.Info{
		Name:    v.inner.Name(),
		Version: "2.0",
		Source:  "positpack v2: FCM/DFCM prediction over posit<32,3> words, split-plane residuals",
	}
}

// Compress implements compress.Codec.
func (v *V2) Compress(src []byte) ([]byte, error) { return v.inner.Compress(src) }

// CompressAppend implements compress.AppendCompressor.
func (v *V2) CompressAppend(dst, src []byte) ([]byte, error) {
	return v.inner.CompressAppend(dst, src)
}

// Decompress implements compress.Codec.
func (v *V2) Decompress(comp []byte) ([]byte, error) { return v.inner.Decompress(comp) }

// DecompressLimits implements compress.Limited.
func (v *V2) DecompressLimits(comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	return v.inner.DecompressLimits(comp, lim)
}

// DecompressAppendLimits implements compress.AppendDecompressor.
func (v *V2) DecompressAppendLimits(dst, comp []byte, lim compress.DecodeLimits) ([]byte, error) {
	return v.inner.DecompressAppendLimits(dst, comp, lim)
}

// DecodeIsLight implements compress.LightDecoder.
func (v *V2) DecodeIsLight() bool { return v.inner.DecodeIsLight() }

var (
	_ compress.Codec              = (*V2)(nil)
	_ compress.AppendCompressor   = (*V2)(nil)
	_ compress.AppendDecompressor = (*V2)(nil)
	_ compress.Limited            = (*V2)(nil)
	_ compress.Describer          = (*V2)(nil)
	_ compress.LightDecoder       = (*V2)(nil)
)
