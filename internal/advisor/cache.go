package advisor

import (
	"container/list"
	"sync"
)

// flight is one in-progress decision computation. Concurrent Decide calls
// for the same key find the leader's flight and wait on done instead of
// re-running the trials.
type flight struct {
	done chan struct{}
	dec  Decision
}

// lruCache is the bounded decision cache plus the single-flight table. Both
// live under one mutex so the "cached? in flight? become leader" check is a
// single atomic step — two goroutines can never both become leader for one
// key, and a finishing leader publishes to the cache and wakes waiters
// without a window where a third caller would re-run the trials.
type lruCache struct {
	mu        sync.Mutex
	capacity  int        // <= 0 disables storage; single-flight still coalesces
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	flights   map[string]*flight
	evictions int64
}

type lruEntry struct {
	key string
	dec Decision
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		flights:  map[string]*flight{},
	}
}

// lookup resolves key in one step: a cache hit returns (dec, true, nil,
// false); an in-progress flight returns (_, false, f, false) for the caller
// to wait on; otherwise the caller is registered as leader and must call
// finish with the computed decision.
func (c *lruCache) lookup(key string) (dec Decision, hit bool, f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry).dec, true, nil, false
	}
	if f, ok := c.flights[key]; ok {
		return Decision{}, false, f, false
	}
	f = &flight{done: make(chan struct{})}
	c.flights[key] = f
	return Decision{}, false, f, true
}

// finish publishes the leader's decision: it lands in the cache (evicting
// the least-recently-used entry past capacity) and every waiter on f wakes
// with it.
func (c *lruCache) finish(key string, f *flight, dec Decision) {
	c.mu.Lock()
	if c.capacity > 0 {
		if el, ok := c.items[key]; ok {
			el.Value.(*lruEntry).dec = dec
			c.ll.MoveToFront(el)
		} else {
			c.items[key] = c.ll.PushFront(&lruEntry{key: key, dec: dec})
			for c.ll.Len() > c.capacity {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.items, oldest.Value.(*lruEntry).key)
				c.evictions++
			}
		}
	}
	delete(c.flights, key)
	c.mu.Unlock()
	f.dec = dec
	close(f.done)
}

// stats reports current length and lifetime evictions.
func (c *lruCache) stats() (length int, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.evictions
}
