package advisor

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"positbench/internal/compress"
	"positbench/internal/trace"
)

// waveBytes serializes n float32 samples of a smooth wave — representative
// float data every registry codec compresses meaningfully.
func waveBytes(n int, phase float64) []byte {
	out := make([]byte, 0, 4*n)
	for i := 0; i < n; i++ {
		b := math.Float32bits(float32(math.Sin(phase + float64(i)/50)))
		out = append(out, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
	}
	return out
}

func TestSampleDeterministic(t *testing.T) {
	data := waveBytes(1<<18, 0) // 1 MiB, well over budget
	s1 := Sample(data, DefaultSampleBytes)
	s2 := Sample(data, DefaultSampleBytes)
	if !bytes.Equal(s1, s2) {
		t.Fatal("Sample is not deterministic on identical input")
	}
	if len(s1) > DefaultSampleBytes {
		t.Fatalf("sample len %d exceeds budget %d", len(s1), DefaultSampleBytes)
	}
	if len(s1) == 0 {
		t.Fatal("sample is empty")
	}
	small := waveBytes(16, 0)
	if got := Sample(small, DefaultSampleBytes); !bytes.Equal(got, small) {
		t.Fatal("under-budget input should sample to itself")
	}
}

func TestDecideDeterministic(t *testing.T) {
	data := waveBytes(1<<16, 0)
	sample := Sample(data, DefaultSampleBytes)

	decide := func() Decision {
		a, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := a.Decide(context.Background(), sample, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1, d2 := decide(), decide()
	if d1.Codec != d2.Codec || d1.Pipeline != d2.Pipeline {
		t.Fatalf("identical input decided differently: %s/%s vs %s/%s",
			d1.Codec, d1.Pipeline, d2.Codec, d2.Pipeline)
	}
	if d1.Confidence != d2.Confidence || d1.SampleRatio != d2.SampleRatio {
		t.Fatalf("identical input scored differently: %+v vs %+v", d1, d2)
	}
	if d1.Fingerprint.Key != d2.Fingerprint.Key {
		t.Fatalf("fingerprint keys differ: %s vs %s", d1.Fingerprint.Key, d2.Fingerprint.Key)
	}
	if d1.Source != SourceTrial || d1.Fallback {
		t.Fatalf("fresh decision has Source=%s Fallback=%v", d1.Source, d1.Fallback)
	}
	if d1.SampleRatio <= 1 {
		t.Fatalf("winner ratio %.3f should beat 1.0 on smooth wave data", d1.SampleRatio)
	}
	if len(d1.Candidates) == 0 || d1.Candidates[0].Codec != d1.Codec {
		t.Fatalf("candidates not winner-first: %+v", d1.Candidates)
	}
}

func TestDecideCacheHit(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sample := Sample(waveBytes(1<<15, 1), 0)
	d1, err := a.Decide(context.Background(), sample, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.Decide(context.Background(), sample, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Source != SourceCache || !d2.CacheHit() {
		t.Fatalf("second decide source = %s, want cache hit", d2.Source)
	}
	if d2.Codec != d1.Codec || d2.Pipeline != d1.Pipeline {
		t.Fatalf("cache returned different decision: %s/%s vs %s/%s",
			d2.Codec, d2.Pipeline, d1.Codec, d1.Pipeline)
	}
	st := a.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.Decisions != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 2 decisions", st)
	}
	if st.HitRatePct != 50 {
		t.Fatalf("hit rate %.1f, want 50", st.HitRatePct)
	}
}

func TestDecideHints(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sample := Sample(waveBytes(1<<14, 2), 0)
	d, err := a.Decide(context.Background(), sample, []string{"gzip"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Codec != "gzip" {
		t.Fatalf("hint-constrained decision chose %s, want gzip", d.Codec)
	}
	if len(d.Candidates) != 1 {
		t.Fatalf("hint should restrict candidates, got %d", len(d.Candidates))
	}
	// Hints are part of the cache key: the unconstrained decision must not
	// be served from the hinted entry.
	d2, err := a.Decide(context.Background(), sample, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Source != SourceTrial {
		t.Fatalf("differently-hinted decide reused cache entry (source %s)", d2.Source)
	}
	if _, err := a.Decide(context.Background(), sample, []string{"nope"}, nil); err == nil {
		t.Fatal("unknown hint should error")
	}
}

func TestDecideLCHint(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sample := Sample(waveBytes(1<<14, 3), 0)
	d, err := a.Decide(context.Background(), sample, []string{"lc"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Codec != "lc" || d.Pipeline == "" {
		t.Fatalf("lc hint decided %s/%q, want lc with a pipeline", d.Codec, d.Pipeline)
	}
	if len(d.Candidates) != len(DefaultLCPipelines()) {
		t.Fatalf("%d lc candidates, want %d", len(d.Candidates), len(DefaultLCPipelines()))
	}
	codec, err := a.CodecFor(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compress.Roundtrip(codec, sample); err != nil {
		t.Fatalf("decided lc codec does not roundtrip: %v", err)
	}
}

func TestCacheEviction(t *testing.T) {
	a, err := New(Config{CacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	samples := [][]byte{
		Sample(waveBytes(1<<12, 0), 0),
		Sample(waveBytes(1<<12, 10), 0),
		Sample(waveBytes(1<<12, 20), 0),
	}
	for _, s := range samples {
		if _, err := a.Decide(context.Background(), s, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.CacheLen != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 inserts into cap-2 cache: len=%d evictions=%d", st.CacheLen, st.Evictions)
	}
	// The first sample was evicted (LRU), so re-deciding it is a miss.
	d, err := a.Decide(context.Background(), samples[0], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Source != SourceTrial {
		t.Fatalf("evicted entry served from %s, want fresh trial", d.Source)
	}
	if st := a.Stats(); st.Evictions != 2 {
		t.Fatalf("re-insert should evict again, evictions=%d", st.Evictions)
	}
}

// gateCodec blocks every Compress until the gate closes and counts calls.
type gateCodec struct {
	gate  chan struct{}
	mu    sync.Mutex
	calls int
}

func (g *gateCodec) Name() string { return "gate" }
func (g *gateCodec) Compress(src []byte) ([]byte, error) {
	g.mu.Lock()
	g.calls++
	g.mu.Unlock()
	<-g.gate
	return append([]byte(nil), src...), nil
}
func (g *gateCodec) Decompress(comp []byte) ([]byte, error) {
	return append([]byte(nil), comp...), nil
}

func TestSingleFlight(t *testing.T) {
	gc := &gateCodec{gate: make(chan struct{})}
	a, err := New(Config{Codecs: []compress.Codec{gc}, LCPipelines: []string{}, Default: "gate"})
	if err != nil {
		t.Fatal(err)
	}
	sample := waveBytes(1<<10, 0)

	const n = 8
	var wg sync.WaitGroup
	decs := make([]Decision, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := a.Decide(context.Background(), sample, nil, nil)
			if err != nil {
				t.Error(err)
				return
			}
			decs[i] = d
		}(i)
	}
	// The leader is parked inside Compress; everyone else must coalesce
	// onto its flight before we open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Coalesced != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced=%d, want %d waiters", a.Stats().Coalesced, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gc.gate)
	wg.Wait()

	if gc.calls != 1 {
		t.Fatalf("%d trial compressions for %d concurrent identical uploads, want 1", gc.calls, n)
	}
	st := a.Stats()
	if st.CacheMisses != 1 || st.Coalesced != n-1 || st.Decisions != n {
		t.Fatalf("stats = %+v, want 1 miss + %d coalesced over %d decisions", st, n-1, n)
	}
	for i, d := range decs {
		if d.Codec != "gate" {
			t.Fatalf("decision %d chose %q", i, d.Codec)
		}
	}
}

// faultCodec fails every compression, either by error or by panic —
// standing in for a codec facing a sample it cannot digest.
type faultCodec struct {
	name   string
	panics bool
}

func (f *faultCodec) Name() string { return f.name }
func (f *faultCodec) Compress(src []byte) ([]byte, error) {
	if f.panics {
		panic("corrupt sample")
	}
	return nil, errors.New("corrupt sample")
}
func (f *faultCodec) Decompress(comp []byte) ([]byte, error) {
	return nil, errors.New("unreachable")
}

func TestFallbackOnCorruptSample(t *testing.T) {
	a, err := New(Config{
		Codecs:      []compress.Codec{&faultCodec{name: "erroring"}, &faultCodec{name: "panicking", panics: true}},
		LCPipelines: []string{},
		Default:     "erroring",
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := trace.New(4).Start("test", "t1")
	d, err := a.Decide(context.Background(), waveBytes(256, 0), nil, sp)
	sp.End()
	if err != nil {
		t.Fatalf("corrupt sample must degrade, not error: %v", err)
	}
	if !d.Fallback || d.Codec != "erroring" || d.Confidence != 0 {
		t.Fatalf("want fallback to default with zero confidence, got %+v", d)
	}
	for _, c := range d.Candidates {
		if c.Err == "" {
			t.Fatalf("candidate %s should carry its failure", c.Codec)
		}
	}
	if st := a.Stats(); st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.Fallbacks)
	}
}

func TestDecideEmptySample(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.Decide(context.Background(), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fallback || d.Codec != DefaultCodecName {
		t.Fatalf("empty sample should fall back to %s, got %+v", DefaultCodecName, d)
	}
}

func TestDecideTraceSubtree(t *testing.T) {
	tr := trace.New(4)
	root := tr.Start("req", "r1")
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Decide(context.Background(), Sample(waveBytes(1<<13, 5), 0), nil, root); err != nil {
		t.Fatal(err)
	}
	root.End()
	snaps := tr.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("want 1 trace, got %d", len(snaps))
	}
	var advise *trace.SpanData
	for _, c := range snaps[0].Root.Children {
		if c.Name == "advise" {
			advise = c
		}
	}
	if advise == nil {
		t.Fatal("no advise span under request root")
	}
	var haveFingerprint, haveTrial bool
	for _, c := range advise.Children {
		if c.Name == "fingerprint" {
			haveFingerprint = true
		}
		if len(c.Name) > 6 && c.Name[:6] == "trial:" {
			haveTrial = true
		}
	}
	if !haveFingerprint || !haveTrial {
		t.Fatalf("advise span missing stages (fingerprint=%v trial=%v)", haveFingerprint, haveTrial)
	}
	var codecAttr string
	for _, at := range advise.Attrs {
		if at.Key == "codec" {
			codecAttr = at.Value
		}
	}
	if codecAttr == "" {
		t.Fatal("advise span has no codec annotation")
	}
}

func TestFingerprintFeatures(t *testing.T) {
	// A constant stream: zero exponent entropy, zero sign flips, maximal
	// block repetition.
	constant := bytes.Repeat(waveBytes(1, 0), 4096)
	fp := fingerprintSample(constant, nil)
	if fp.ExpEntropy != 0 {
		t.Fatalf("constant stream ExpEntropy = %f, want 0", fp.ExpEntropy)
	}
	if fp.SignFlipPct != 0 {
		t.Fatalf("constant stream SignFlipPct = %f, want 0", fp.SignFlipPct)
	}
	if fp.RepeatPct < 90 {
		t.Fatalf("constant stream RepeatPct = %f, want ~100", fp.RepeatPct)
	}
	if !fp.FloatLike {
		t.Fatal("constant finite floats should be FloatLike")
	}

	// A NaN-saturated stream is not float-like.
	nan := bytes.Repeat([]byte{0xFF, 0xFF, 0xFF, 0x7F}, 1024)
	if fp := fingerprintSample(nan, nil); fp.FloatLike {
		t.Fatal("all-NaN stream should not be FloatLike")
	}

	// Wave data exercises the entropy features without degenerating.
	fp = fingerprintSample(waveBytes(4096, 0), nil)
	if fp.ExpEntropy <= 0 || fp.MantDeltaEntropy <= 0 {
		t.Fatalf("wave entropies should be positive: %+v", fp)
	}

	// Hints split the key; hint order and case do not.
	data := waveBytes(64, 0)
	base := fingerprintSample(data, nil).Key
	hinted := fingerprintSample(data, []string{"gzip", "zstd"}).Key
	if base == hinted {
		t.Fatal("hints must split the cache key")
	}
	reordered := fingerprintSample(data, []string{"ZSTD", " gzip "}).Key
	if hinted != reordered {
		t.Fatalf("hint normalization failed: %q vs %q", hinted, reordered)
	}
}

func TestCodecForRegistry(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.CodecFor(Decision{Codec: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "gzip" {
		t.Fatalf("CodecFor(gzip) = %s", c.Name())
	}
	if _, err := a.CodecFor(Decision{Codec: "nope"}); err == nil {
		t.Fatal("CodecFor should reject unknown codec")
	}
	if _, err := a.CodecFor(Decision{Codec: "lc", Pipeline: "BOGUS|X|Y"}); err == nil {
		t.Fatal("CodecFor should reject bad pipeline")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Default: "nope"}); err == nil {
		t.Fatal("unknown default codec should error")
	}
	if _, err := New(Config{LCPipelines: []string{"NOT|A|PIPE"}}); err == nil {
		t.Fatal("bad lc pipeline should error")
	}
	if _, err := New(Config{Codecs: []compress.Codec{}, LCPipelines: []string{}}); err == nil {
		t.Fatal("no candidates should error")
	}
}
