package advisor

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"strings"

	"positbench/internal/ieee"
)

// Fingerprint is the advisor's compact description of one sampled stream:
// the content hash that keys the decision cache, plus the float-structure
// features that travel with every decision as evidence. Features are
// computed on the little-endian 32-bit word view of the sample (the wire
// format of every study input); byte streams that are not word-aligned
// still fingerprint — the ragged tail is simply outside the word view.
type Fingerprint struct {
	// Key is the cache key: FNV-1a over the sample bytes, the sample
	// length, and the normalized candidate hints. Identical samples under
	// identical hints always collide — that is the point.
	Key string `json:"key"`
	// SampleLen is how many bytes were fingerprinted and trial-compressed.
	SampleLen int `json:"sample_len"`
	// ExpEntropy is the Shannon entropy (bits, 0..8) of the biased-exponent
	// histogram. Low entropy means the exponent plane is nearly constant —
	// the structure positpack/fpc-class codecs exploit.
	ExpEntropy float64 `json:"exp_entropy"`
	// SignFlipPct is the percentage of consecutive values whose sign bit
	// differs (oscillating fields flip often; smooth fields almost never).
	SignFlipPct float64 `json:"sign_flip_pct"`
	// MantDeltaEntropy is the Shannon entropy (bits, 0..~5) of the
	// leading-zero-count distribution of XOR deltas between consecutive
	// words: a proxy for how predictable successive mantissas are, the
	// signal FCM/DFCM predictors feed on.
	MantDeltaEntropy float64 `json:"mant_delta_entropy"`
	// RepeatPct is the percentage of 64-byte blocks in the sample whose
	// exact content occurred earlier in the sample (LZ-class fuel).
	RepeatPct float64 `json:"repeat_pct"`
	// FloatLike reports whether the sample is word-aligned and nearly free
	// of NaN/Inf patterns, i.e. plausibly float32 (or posit) data at all.
	FloatLike bool `json:"float_like"`
}

// sampleSeed seeds the deterministic window placement in Sample. It is a
// constant on purpose: identical input must always yield the identical
// sample, and therefore the identical fingerprint and decision.
const sampleSeed = 1

// sampleWindows is how many regions Sample cuts from an over-budget input.
const sampleWindows = 4

// Sample extracts the advisor's deterministic sample from data: the whole
// input when it fits the budget, otherwise sampleWindows windows of
// budget/sampleWindows bytes, one per equal segment of the input, each
// placed inside its segment by a seeded RNG. The placement depends only on
// len(data) and the constant seed, so identical inputs sample identically.
func Sample(data []byte, budget int) []byte {
	if budget <= 0 {
		budget = DefaultSampleBytes
	}
	if len(data) <= budget {
		return data
	}
	window := budget / sampleWindows
	if window == 0 {
		window = 1
	}
	rng := rand.New(rand.NewSource(sampleSeed))
	out := make([]byte, 0, budget)
	segment := len(data) / sampleWindows
	for i := 0; i < sampleWindows; i++ {
		segStart := i * segment
		slack := segment - window
		if slack < 0 {
			slack = 0
		}
		off := segStart
		if slack > 0 {
			off += rng.Intn(slack)
		}
		// Word-align the window start so the float32 view of the sample
		// stays in phase with the underlying stream.
		off &^= 3
		end := off + window
		if end > len(data) {
			end = len(data)
		}
		out = append(out, data[off:end]...)
	}
	return out
}

// fingerprintSample computes the fingerprint of sample under hints.
func fingerprintSample(sample []byte, hints []string) Fingerprint {
	fp := Fingerprint{SampleLen: len(sample)}

	h := fnv.New64a()
	h.Write(sample)
	fp.Key = fmt.Sprintf("%016x-%d", h.Sum64(), len(sample))
	if norm := normalizeHints(hints); len(norm) > 0 {
		fp.Key += "|" + strings.Join(norm, ",")
	}

	words := len(sample) / 4
	if words == 0 {
		return fp
	}

	var hist ieee.Histogram
	var signFlips, specials int
	var lzcBins [33]int
	prev := leWord(sample, 0)
	hist.Add(math.Float32frombits(prev))
	if cls := ieee.Classify(math.Float32frombits(prev)); cls == ieee.Inf || cls == ieee.NaN {
		specials++
	}
	for i := 1; i < words; i++ {
		w := leWord(sample, i)
		f := math.Float32frombits(w)
		hist.Add(f)
		if cls := ieee.Classify(f); cls == ieee.Inf || cls == ieee.NaN {
			specials++
		}
		if (w^prev)>>31 != 0 {
			signFlips++
		}
		lzcBins[bits.LeadingZeros32(w^prev)]++
		prev = w
	}
	fp.ExpEntropy = entropy(hist.Bins[:], words)
	if words > 1 {
		fp.SignFlipPct = 100 * float64(signFlips) / float64(words-1)
		fp.MantDeltaEntropy = entropy(lzcBins[:], words-1)
	}
	fp.RepeatPct = repeatedBlockPct(sample)
	fp.FloatLike = len(sample)%4 == 0 && specials*20 < words // < 5% NaN/Inf
	return fp
}

// leWord reads the i-th little-endian 32-bit word of b.
func leWord(b []byte, i int) uint32 {
	off := 4 * i
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

// entropy is the Shannon entropy in bits of a count histogram with total
// observations.
func entropy(bins []int, total int) float64 {
	if total <= 0 {
		return 0
	}
	var e float64
	for _, n := range bins {
		if n == 0 {
			continue
		}
		p := float64(n) / float64(total)
		e -= p * math.Log2(p)
	}
	return e
}

// repeatBlockSize is the granularity of the repeated-block scan.
const repeatBlockSize = 64

// repeatedBlockPct reports what percentage of repeatBlockSize-byte blocks
// repeat an earlier block exactly (by content hash; a collision overcounts
// by at most a rounding error on real data).
func repeatedBlockPct(sample []byte) float64 {
	blocks := len(sample) / repeatBlockSize
	if blocks < 2 {
		return 0
	}
	seen := make(map[uint64]struct{}, blocks)
	repeats := 0
	for i := 0; i < blocks; i++ {
		h := fnv.New64a()
		h.Write(sample[i*repeatBlockSize : (i+1)*repeatBlockSize])
		sum := h.Sum64()
		if _, dup := seen[sum]; dup {
			repeats++
		} else {
			seen[sum] = struct{}{}
		}
	}
	return 100 * float64(repeats) / float64(blocks)
}

// normalizeHints lowercases, trims, dedupes, and sorts hint names so hint
// order never splits the cache.
func normalizeHints(hints []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, h := range hints {
		h = strings.ToLower(strings.TrimSpace(h))
		if h == "" || seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
