// Package advisor implements adaptive codec selection: given a small
// deterministic sample of a stream, it fingerprints the sample's float
// structure, trial-compresses it through every candidate codec in parallel
// (including a shortlist of LC pipelines), and picks the codec — and for
// LC, the pipeline — for the whole stream. Decisions are cached in a
// bounded LRU keyed by the sample's content fingerprint, with single-flight
// de-duplication so concurrent identical streams share one set of trials.
// Every decision carries its evidence (fingerprint features, per-candidate
// sample ratios, confidence) and is recorded as a span subtree when the
// caller passes a trace span.
package advisor

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/container"
	"positbench/internal/lc"
	"positbench/internal/trace"
)

// Defaults for Config zero values.
const (
	// DefaultSampleBytes is the trial-compression sample budget: large
	// enough that general-purpose codecs reach steady-state ratios, small
	// enough that a full candidate sweep costs single-digit milliseconds.
	DefaultSampleBytes = 64 << 10
	// DefaultCacheSize bounds the decision LRU.
	DefaultCacheSize = 256
	// DefaultCodecName is the fallback codec when trials produce nothing
	// usable (corrupt sample, every candidate erroring): the registry's
	// best general-purpose ratio/speed compromise.
	DefaultCodecName = "zstd"
)

// DefaultLCPipelines is the LC shortlist trialed under the "lc" candidate:
// the repo's measured global-best pipeline on the synthetic corpus, the
// paper's published float and posit pipelines, and two transpose-family
// pipelines that win on smooth low-entropy fields. A full 14^3 search per
// request would cost seconds; the shortlist keeps the advise path in
// milliseconds while covering the pipeline families that actually win.
func DefaultLCPipelines() []string {
	return []string{
		"BIT|RLE|HUF",      // repo global best (EXPERIMENTS.md fig. 3/4)
		"DIFFMS|RARE|RAZE", // paper's float pipeline
		"DIFFNB|BIT|RZE",   // paper's posit pipeline
		"DIFF4|BYTE|RZE",   // word delta + byte transpose + zero runs
		"XOR4|BYTE|HUF",    // word xor + byte transpose + entropy coder
	}
}

// Config configures an Advisor. Zero values select the defaults above.
type Config struct {
	// Codecs are the candidate codecs (default the full registry). They
	// must be safe for concurrent use; the registry codecs are.
	Codecs []compress.Codec
	// LCPipelines lists "A|B|C" pipeline specs trialed under the "lc"
	// candidate (default DefaultLCPipelines; explicit empty non-nil slice
	// disables LC candidacy).
	LCPipelines []string
	// SampleBytes is the sampling budget handed to Sample.
	SampleBytes int
	// CacheSize bounds the decision LRU (< 0 disables caching entirely;
	// single-flight coalescing still applies).
	CacheSize int
	// Default names the fallback codec (default DefaultCodecName, or the
	// first candidate if that name is absent).
	Default string
	// Workers bounds concurrent trial compressions per decision (default
	// GOMAXPROCS).
	Workers int
}

// candidateSpec is one trial target: a registry codec, or one LC pipeline
// wrapped as a framed codec (so its trial size includes the same container
// overhead the registry codecs pay).
type candidateSpec struct {
	name     string
	pipeline string // non-empty only for LC
	codec    compress.Codec
}

// Advisor makes cached, traced codec decisions. Safe for concurrent use.
type Advisor struct {
	specs       []candidateSpec
	names       []string // unique candidate names, registry order, "lc" last
	byName      map[string]bool
	sampleBytes int
	def         candidateSpec
	workers     int
	cache       *lruCache

	decisions atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	fallbacks atomic.Int64
	chosen    map[string]*atomic.Int64 // keyed by candidate name, built at New
}

// New builds an Advisor from cfg.
func New(cfg Config) (*Advisor, error) {
	codecs := cfg.Codecs
	if codecs == nil {
		codecs = all.Codecs()
	}
	if len(codecs) == 0 && len(cfg.LCPipelines) == 0 {
		return nil, fmt.Errorf("advisor: no candidate codecs")
	}
	pipes := cfg.LCPipelines
	if pipes == nil {
		pipes = DefaultLCPipelines()
	}

	a := &Advisor{
		byName:      map[string]bool{},
		sampleBytes: cfg.SampleBytes,
		workers:     cfg.Workers,
		chosen:      map[string]*atomic.Int64{},
	}
	if a.sampleBytes <= 0 {
		a.sampleBytes = DefaultSampleBytes
	}
	if a.workers <= 0 {
		a.workers = runtime.GOMAXPROCS(0)
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	a.cache = newLRUCache(size)

	for _, c := range codecs {
		name := c.Name()
		if a.byName[name] {
			return nil, fmt.Errorf("advisor: duplicate candidate %q", name)
		}
		a.byName[name] = true
		a.names = append(a.names, name)
		a.specs = append(a.specs, candidateSpec{name: name, codec: c})
		a.chosen[name] = &atomic.Int64{}
	}
	for _, spec := range pipes {
		pipe, err := lc.NewPipeline(strings.Split(spec, "|")...)
		if err != nil {
			return nil, fmt.Errorf("advisor: lc pipeline %q: %w", spec, err)
		}
		if !a.byName["lc"] {
			a.byName["lc"] = true
			a.names = append(a.names, "lc")
			a.chosen["lc"] = &atomic.Int64{}
		}
		a.specs = append(a.specs, candidateSpec{
			name:     "lc",
			pipeline: pipe.String(),
			codec:    container.Wrap(lc.NewCodec(pipe)),
		})
	}

	defName := cfg.Default
	if defName == "" {
		defName = DefaultCodecName
	}
	for _, s := range a.specs {
		if s.name == defName {
			a.def = s
			break
		}
	}
	if a.def.codec == nil {
		if cfg.Default != "" {
			return nil, fmt.Errorf("advisor: default codec %q not among candidates %v", cfg.Default, a.names)
		}
		a.def = a.specs[0]
	}
	return a, nil
}

// Names lists the candidate names in trial order ("lc" last when present).
func (a *Advisor) Names() []string { return append([]string(nil), a.names...) }

// Eligible reports whether name is an advisor candidate.
func (a *Advisor) Eligible(name string) bool { return a.byName[name] }

// SampleBytes reports the configured sampling budget.
func (a *Advisor) SampleBytes() int { return a.sampleBytes }

// Candidate is one trial outcome, kept on the decision as evidence.
type Candidate struct {
	Codec       string  `json:"codec"`
	Pipeline    string  `json:"pipeline,omitempty"`
	CompLen     int     `json:"comp_len"`
	SampleRatio float64 `json:"sample_ratio"`
	DurUS       int64   `json:"dur_us"`
	Err         string  `json:"err,omitempty"`
}

// Decision sources.
const (
	SourceTrial     = "trial"     // this call ran the trials
	SourceCache     = "cache"     // served from the LRU
	SourceCoalesced = "coalesced" // waited on a concurrent identical trial
)

// Decision is the advisor's verdict for one sampled stream.
type Decision struct {
	// Codec is the chosen codec name; Pipeline is set when Codec is "lc".
	Codec    string `json:"codec"`
	Pipeline string `json:"pipeline,omitempty"`
	// SampleRatio is the winner's compression ratio on the sample.
	SampleRatio float64 `json:"sample_ratio"`
	// Confidence is the winner's relative margin over the runner-up:
	// 1 - bestCompLen/runnerUpCompLen, in [0,1). 1.0 when only one
	// candidate succeeded; 0 when the decision is a fallback.
	Confidence float64 `json:"confidence"`
	// Fallback marks a decision where no trial succeeded and the advisor
	// degraded to the configured default codec instead of erroring.
	Fallback bool `json:"fallback,omitempty"`
	// Source says how this decision was obtained (trial/cache/coalesced).
	Source string `json:"source"`
	// Fingerprint is the sampled stream's feature evidence and cache key.
	Fingerprint Fingerprint `json:"fingerprint"`
	// Candidates holds every trial outcome, winner first by CompLen.
	Candidates []Candidate `json:"candidates,omitempty"`
}

// CacheHit reports whether the decision avoided running trials.
func (d Decision) CacheHit() bool { return d.Source != SourceTrial }

// Decide fingerprints sample (as produced by Sample) under hints and
// returns the cached or freshly-trialed decision. hints, when non-empty,
// restrict the candidate set to the named codecs; an unknown hint is the
// only error path — everything else degrades to the default codec with
// Fallback set. ctx bounds only the wait on a concurrent identical
// decision; the trials themselves are sub-millisecond-per-candidate and run
// to completion. The decision is recorded as an "advise" span subtree under
// parent.
func (a *Advisor) Decide(ctx context.Context, sample []byte, hints []string, parent *trace.Span) (Decision, error) {
	sp := parent.Child("advise")
	defer sp.End()
	sp.SetBytes(int64(len(sample)), 0)

	norm := normalizeHints(hints)
	for _, h := range norm {
		if !a.byName[h] {
			return Decision{}, fmt.Errorf("advisor: unknown hint %q (candidates %v)", h, a.names)
		}
	}

	t0 := time.Now()
	fp := fingerprintSample(sample, norm)
	sp.AddStage("fingerprint", time.Since(t0), int64(len(sample)), 0)

	dec, hit, f, leader := a.cache.lookup(fp.Key)
	switch {
	case hit:
		a.hits.Add(1)
		dec.Source = SourceCache
	case !leader:
		a.coalesced.Add(1)
		select {
		case <-f.done:
		case <-ctx.Done():
			return Decision{}, ctx.Err()
		}
		dec = f.dec
		dec.Source = SourceCoalesced
	default:
		a.misses.Add(1)
		dec = a.trial(sample, norm, fp, sp)
		a.cache.finish(fp.Key, f, dec)
	}

	a.decisions.Add(1)
	if dec.Fallback {
		a.fallbacks.Add(1)
	}
	if n := a.chosen[dec.Codec]; n != nil {
		n.Add(1)
	}
	sp.Annotate("codec", dec.Codec)
	if dec.Pipeline != "" {
		sp.Annotate("pipeline", dec.Pipeline)
	}
	sp.Annotate("source", dec.Source)
	sp.Annotate("confidence", fmt.Sprintf("%.3f", dec.Confidence))
	if dec.Fallback {
		sp.Annotate("fallback", "true")
	}
	return dec, nil
}

// trial runs every eligible candidate on the sample in parallel and picks
// the smallest output. Trial failures (errors or panics from a corrupt
// sample) are recorded on the candidate and excluded from the pick; if
// nothing succeeds the decision degrades to the default codec.
func (a *Advisor) trial(sample []byte, hints []string, fp Fingerprint, sp *trace.Span) Decision {
	want := func(name string) bool {
		if len(hints) == 0 {
			return true
		}
		for _, h := range hints {
			if h == name {
				return true
			}
		}
		return false
	}
	var specs []candidateSpec
	for _, s := range a.specs {
		if want(s.name) {
			specs = append(specs, s)
		}
	}

	cands := make([]Candidate, len(specs))
	if len(sample) > 0 {
		sem := make(chan struct{}, a.workers)
		var wg sync.WaitGroup
		for i, s := range specs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, s candidateSpec) {
				defer wg.Done()
				defer func() { <-sem }()
				cands[i] = runTrial(s, sample)
			}(i, s)
		}
		wg.Wait()
	} else {
		for i, s := range specs {
			cands[i] = Candidate{Codec: s.name, Pipeline: s.pipeline, Err: "empty sample"}
		}
	}
	for _, c := range cands {
		sp.AddStage("trial:"+trialLabel(c), time.Duration(c.DurUS)*time.Microsecond,
			int64(len(sample)), int64(c.CompLen))
	}

	// Winner first, then ascending output size; failures last in trial
	// order. sort.SliceStable keeps candidate order deterministic on ties,
	// so identical samples always elect the identical winner.
	sort.SliceStable(cands, func(i, j int) bool {
		if (cands[i].Err == "") != (cands[j].Err == "") {
			return cands[i].Err == ""
		}
		if cands[i].Err != "" {
			return false
		}
		return cands[i].CompLen < cands[j].CompLen
	})

	dec := Decision{Source: SourceTrial, Fingerprint: fp, Candidates: cands}
	if len(cands) == 0 || cands[0].Err != "" {
		dec.Codec = a.def.name
		dec.Pipeline = a.def.pipeline
		dec.Fallback = true
		return dec
	}
	best := cands[0]
	dec.Codec = best.Codec
	dec.Pipeline = best.Pipeline
	dec.SampleRatio = best.SampleRatio
	dec.Confidence = 1
	if len(cands) > 1 && cands[1].Err == "" && cands[1].CompLen > 0 {
		dec.Confidence = 1 - float64(best.CompLen)/float64(cands[1].CompLen)
		if dec.Confidence < 0 {
			dec.Confidence = 0
		}
	}
	return dec
}

// runTrial compresses sample with one candidate, converting any panic into
// a trial error so one hostile sample cannot take down the advise path.
func runTrial(s candidateSpec, sample []byte) (cand Candidate) {
	cand = Candidate{Codec: s.name, Pipeline: s.pipeline}
	t0 := time.Now()
	defer func() {
		cand.DurUS = time.Since(t0).Microseconds()
		if p := recover(); p != nil {
			cand.CompLen, cand.SampleRatio = 0, 0
			cand.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	comp, err := s.codec.Compress(sample)
	if err != nil {
		cand.Err = err.Error()
		return cand
	}
	cand.CompLen = len(comp)
	cand.SampleRatio = compress.Ratio(len(sample), len(comp))
	return cand
}

// trialLabel names a trial stage: the codec name, or lc:<pipeline>.
func trialLabel(c Candidate) string {
	if c.Pipeline != "" {
		return c.Codec + ":" + c.Pipeline
	}
	return c.Codec
}

// CodecFor materializes the codec a decision names: the matching candidate
// for registry codecs, or a freshly framed LC codec for the decided
// pipeline.
func (a *Advisor) CodecFor(d Decision) (compress.Codec, error) {
	if d.Codec == "lc" {
		pipe, err := lc.NewPipeline(strings.Split(d.Pipeline, "|")...)
		if err != nil {
			return nil, fmt.Errorf("advisor: decision pipeline %q: %w", d.Pipeline, err)
		}
		return container.Wrap(lc.NewCodec(pipe)), nil
	}
	for _, s := range a.specs {
		if s.name == d.Codec {
			return s.codec, nil
		}
	}
	return nil, fmt.Errorf("advisor: decision codec %q not among candidates %v", d.Codec, a.names)
}

// Stats is a point-in-time advisor counter snapshot.
type Stats struct {
	Decisions   int64            `json:"decisions"`
	CacheHits   int64            `json:"cache_hits"`
	CacheMisses int64            `json:"cache_misses"`
	Coalesced   int64            `json:"coalesced"`
	Evictions   int64            `json:"evictions"`
	Fallbacks   int64            `json:"fallbacks"`
	CacheLen    int              `json:"cache_len"`
	HitRatePct  float64          `json:"hit_rate_pct"` // hits/(hits+misses)
	Chosen      map[string]int64 `json:"chosen,omitempty"`
}

// Stats snapshots the advisor's counters.
func (a *Advisor) Stats() Stats {
	st := Stats{
		Decisions:   a.decisions.Load(),
		CacheHits:   a.hits.Load(),
		CacheMisses: a.misses.Load(),
		Coalesced:   a.coalesced.Load(),
		Fallbacks:   a.fallbacks.Load(),
		Chosen:      map[string]int64{},
	}
	st.CacheLen, st.Evictions = a.cache.stats()
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.HitRatePct = 100 * float64(st.CacheHits) / float64(lookups)
	}
	for name, n := range a.chosen {
		if v := n.Load(); v > 0 {
			st.Chosen[name] = v
		}
	}
	return st
}
