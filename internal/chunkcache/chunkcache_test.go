package chunkcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

// TestSingleFlight pins the single-flight property under the bar the issue
// sets: 32 concurrent readers of one key run exactly one fill, and all 32
// get the same bytes.
func TestSingleFlight(t *testing.T) {
	c := New(1 << 20)
	var fills atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	outs := make([][]byte, 32)
	errs := make([]error, 32)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			outs[i], _, errs[i] = c.GetOrFill(key(1), func() ([]byte, error) {
				fills.Add(1)
				return []byte("decoded-chunk"), nil
			})
		}()
	}
	close(gate)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("32 concurrent readers ran %d fills, want exactly 1", n)
	}
	for i := 0; i < 32; i++ {
		if errs[i] != nil || !bytes.Equal(outs[i], []byte("decoded-chunk")) {
			t.Fatalf("reader %d: %q, %v", i, outs[i], errs[i])
		}
	}
	st := c.Snapshot()
	if st.Lookups != 32 || st.Hits+st.Misses != st.Lookups {
		t.Fatalf("stats do not reconcile: %+v", st)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (the single fill)", st.Misses)
	}
}

// TestEvictionByteBound fills past the budget and checks the bound holds
// after every insertion, with exact byte accounting.
func TestEvictionByteBound(t *testing.T) {
	const max = 10 * 100
	c := New(max)
	for i := 0; i < 25; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 100)
		if _, _, err := c.GetOrFill(key(byte(i)), func() ([]byte, error) { return data, nil }); err != nil {
			t.Fatal(err)
		}
		st := c.Snapshot()
		if st.Bytes > max {
			t.Fatalf("after insert %d: %d resident bytes exceed bound %d", i, st.Bytes, max)
		}
		if st.Bytes != st.Entries*100 {
			t.Fatalf("after insert %d: bytes %d != entries %d x 100", i, st.Bytes, st.Entries)
		}
	}
	st := c.Snapshot()
	if st.Evictions != 15 {
		t.Fatalf("evictions = %d, want 15 (25 inserts into a 10-slot budget)", st.Evictions)
	}
	if st.Entries != 10 || st.Bytes != max {
		t.Fatalf("steady state: %d entries, %d bytes; want 10 and %d", st.Entries, st.Bytes, max)
	}
}

// TestLRUOrder: touching an entry protects it; the least recently used one
// goes first.
func TestLRUOrder(t *testing.T) {
	c := New(300)
	fill := func(b byte) func() ([]byte, error) {
		return func() ([]byte, error) { return bytes.Repeat([]byte{b}, 100), nil }
	}
	for _, b := range []byte{1, 2, 3} {
		c.GetOrFill(key(b), fill(b))
	}
	if _, hit, _ := c.GetOrFill(key(1), fill(1)); !hit { // 1 becomes MRU
		t.Fatal("expected hit on resident key 1")
	}
	c.GetOrFill(key(4), fill(4)) // evicts 2, the LRU
	if _, hit, _ := c.GetOrFill(key(2), fill(2)); hit {
		t.Fatal("key 2 should have been evicted")
	}
	// Probing 2 above refilled it, evicting 3 in turn; 1 must still be
	// resident.
	if _, hit, _ := c.GetOrFill(key(1), fill(1)); !hit {
		t.Fatal("recently used key 1 was evicted out of order")
	}
}

// TestPoisonedFillNeverCached: a failed fill propagates its error to the
// leader and every coalesced waiter, and the key is forgotten — the next
// lookup re-runs the fill.
func TestPoisonedFillNeverCached(t *testing.T) {
	c := New(1 << 20)
	poison := errors.New("bit rot")
	var fills atomic.Int64
	filling := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 16)
	wg.Add(1)
	go func() { // the leader: its fill blocks until every waiter has arrived
		defer wg.Done()
		_, _, errs[0] = c.GetOrFill(key(9), func() ([]byte, error) {
			fills.Add(1)
			close(filling)
			<-release
			return nil, poison
		})
	}()
	<-filling
	for i := 1; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = c.GetOrFill(key(9), func() ([]byte, error) {
				fills.Add(1)
				return nil, poison
			})
		}()
	}
	// Every waiter is committed to the coalesced path before the leader
	// resolves, so the forgotten key cannot hand one of them a second fill.
	for c.Snapshot().Coalesced < 15 {
	}
	close(release)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("poisoned fill ran %d times under contention, want 1", n)
	}
	for i, err := range errs {
		if !errors.Is(err, poison) {
			t.Fatalf("waiter %d: err = %v, want the fill error", i, err)
		}
	}
	if st := c.Snapshot(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("poisoned fill left %d entries / %d bytes resident", st.Entries, st.Bytes)
	}
	// The key was forgotten: a retry runs the fill again and can succeed.
	out, hit, err := c.GetOrFill(key(9), func() ([]byte, error) {
		fills.Add(1)
		return []byte("ok"), nil
	})
	if err != nil || hit || string(out) != "ok" {
		t.Fatalf("retry after poison: %q, hit=%v, %v", out, hit, err)
	}
	if fills.Load() != 2 {
		t.Fatalf("retry did not re-run the fill")
	}
	if st := c.Snapshot(); st.Hits+st.Misses != st.Lookups {
		t.Fatalf("stats do not reconcile: %+v", st)
	}
}

// TestOversizedNeverAdmitted: a chunk bigger than the whole budget is
// returned but not cached.
func TestOversizedNeverAdmitted(t *testing.T) {
	c := New(100)
	big := bytes.Repeat([]byte{7}, 200)
	for i := 0; i < 2; i++ {
		out, hit, err := c.GetOrFill(key(5), func() ([]byte, error) { return big, nil })
		if err != nil || hit || !bytes.Equal(out, big) {
			t.Fatalf("attempt %d: hit=%v err=%v", i, hit, err)
		}
	}
	if st := c.Snapshot(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized chunk was admitted: %+v", st)
	}
}

// TestStatsReconcileUnderContention hammers a small cache from many
// goroutines with overlapping keys and checks the exact invariants the
// issue names: hits+misses == lookups, and resident bytes == the byte sum
// of resident chunks (every entry here is the same size, so bytes must be a
// multiple of it and within the bound).
func TestStatsReconcileUnderContention(t *testing.T) {
	const chunkBytes = 64
	c := New(8 * chunkBytes)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := byte((g + i) % 24)
				data, _, err := c.GetOrFill(key(k), func() ([]byte, error) {
					if k%11 == 10 {
						return nil, fmt.Errorf("poisoned key %d", k)
					}
					return bytes.Repeat([]byte{k}, chunkBytes), nil
				})
				if err == nil && (len(data) != chunkBytes || data[0] != k) {
					t.Error("cache returned wrong bytes")
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Snapshot()
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
	}
	if st.Lookups != 16*200 {
		t.Fatalf("lookups = %d, want %d", st.Lookups, 16*200)
	}
	if st.Bytes != st.Entries*chunkBytes {
		t.Fatalf("resident bytes %d != %d entries x %d", st.Bytes, st.Entries, chunkBytes)
	}
	if st.Bytes > 8*chunkBytes {
		t.Fatalf("resident bytes %d exceed bound", st.Bytes)
	}
	if st.FillErrors == 0 {
		t.Fatal("expected some poisoned fills in the mix")
	}
}
