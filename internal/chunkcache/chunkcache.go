// Package chunkcache is a bounded, content-addressed cache for decoded
// chunks. Keys are derived from the compressed chunk's content (hash plus
// the frame CRC and raw length pinned alongside it by the container layer),
// so identical compressed chunks — across objects, across requests — share
// one decode and one resident copy. Fills are single-flight: under N
// concurrent readers of the same key exactly one runs the decode and the
// rest wait for it; a failed fill is handed to every waiter and never
// cached. Eviction is LRU over resident bytes.
package chunkcache

import (
	"sync"
	"sync/atomic"
)

// KeyLen is the cache key width: a 16-byte truncated content hash plus the
// 4-byte CRC-32C and 4-byte raw length of the chunk it names. Folding the
// CRC and length into the key (rather than trusting the hash alone) means
// an index trailer that forges someone else's chunk hash cannot pull bytes
// out of the cache unless it also declares the exact CRC and size — at
// which point the trailer fully specifies the content it is asking for.
const KeyLen = 24

// Key identifies one decoded chunk by its compressed content.
type Key [KeyLen]byte

// entry is one cache slot. Between insertion and fill completion it sits in
// the map but not the LRU list (resident == false); waiters block on ready.
// Cached data is shared by reference — callers must treat it as read-only.
type entry struct {
	key      Key
	data     []byte
	err      error
	ready    chan struct{} // closed when data/err is resolved
	resident bool
	prev     *entry
	next     *entry
}

// Cache is a bounded content-addressed chunk cache. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	maxByte int64
	entries map[Key]*entry
	head    *entry // most recently used
	tail    *entry // least recently used; eviction end
	bytes   int64
	count   int64

	lookups    atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	coalesced  atomic.Int64
	evictions  atomic.Int64
	fillErrors atomic.Int64
}

// New returns a cache bounding resident decoded bytes at maxBytes.
// maxBytes <= 0 yields a cache that admits nothing but still coalesces
// concurrent fills of the same key.
func New(maxBytes int64) *Cache {
	return &Cache{maxByte: maxBytes, entries: make(map[Key]*entry)}
}

// GetOrFill returns the decoded chunk for key, running fill at most once
// per key across concurrent callers. The second return reports whether the
// bytes came out of the cache (true) or from a fill this call led or waited
// on (false for the leader, true for coalesced waiters — they did not
// decode). A fill error is returned to the leader and every waiter, and the
// key is forgotten: a poisoned chunk is never cached and the next lookup
// retries. The returned slice is shared — callers must not mutate it.
func (c *Cache) GetOrFill(key Key, fill func() ([]byte, error)) ([]byte, bool, error) {
	c.lookups.Add(1)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.resident {
			c.moveToFront(e)
			c.mu.Unlock()
			c.hits.Add(1)
			return e.data, true, nil
		}
		// A fill for this key is in flight; wait for it outside the lock.
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-e.ready
		if e.err != nil {
			c.misses.Add(1)
			return nil, false, e.err
		}
		c.hits.Add(1)
		return e.data, true, nil
	}
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	data, err := fill()
	c.mu.Lock()
	if err != nil {
		delete(c.entries, key)
		e.err = err
		c.mu.Unlock()
		close(e.ready)
		c.fillErrors.Add(1)
		return nil, false, err
	}
	e.data = data
	if int64(len(data)) <= c.maxByte {
		e.resident = true
		c.pushFront(e)
		c.bytes += int64(len(data))
		c.count++
		c.evictLocked()
	} else {
		// Larger than the whole budget: hand it to the caller (and any
		// waiters) but do not admit it — one oversized chunk must not wipe
		// the working set.
		delete(c.entries, key)
	}
	c.mu.Unlock()
	close(e.ready)
	return data, false, nil
}

// evictLocked drops least-recently-used resident entries until the byte
// bound holds. Waiters that already hold a reference keep their slice; only
// the cache's accounting lets go.
func (c *Cache) evictLocked() {
	for c.bytes > c.maxByte && c.tail != nil {
		e := c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.data))
		c.count--
		c.evictions.Add(1)
	}
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// Stats is one consistent-enough snapshot of the cache counters. The
// invariants the property tests pin: Hits+Misses == Lookups (every lookup
// resolves as exactly one of the two), and Bytes == the byte sum of the
// resident entries.
type Stats struct {
	Lookups    int64 `json:"lookups"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Coalesced  int64 `json:"coalesced"` // lookups that waited on an in-flight fill
	Evictions  int64 `json:"evictions"`
	FillErrors int64 `json:"fill_errors"`
	Entries    int64 `json:"entries"`
	Bytes      int64 `json:"bytes_resident"`
	MaxBytes   int64 `json:"max_bytes"`
}

// Snapshot reads the current counter values.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	entries, bytes := c.count, c.bytes
	c.mu.Unlock()
	return Stats{
		Lookups:    c.lookups.Load(),
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Coalesced:  c.coalesced.Load(),
		Evictions:  c.evictions.Load(),
		FillErrors: c.fillErrors.Load(),
		Entries:    entries,
		Bytes:      bytes,
		MaxBytes:   c.maxByte,
	}
}
