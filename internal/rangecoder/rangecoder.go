// Package rangecoder implements an LZMA-style binary range coder with
// adaptive probability models and bit-tree helpers. It is the entropy
// engine of the XZ-class codec: context-modelled arithmetic coding is what
// lets a large-window LZ beat Huffman-based compressors.
package rangecoder

import "positbench/internal/compress"

// ErrTruncated is returned when the decoder runs out of input. It matches
// compress.ErrTruncated (and compress.ErrCorrupt) under errors.Is.
var ErrTruncated = compress.Errorf(compress.ErrTruncated, "rangecoder: truncated stream")

const (
	probBits  = 11
	probInit  = 1 << (probBits - 1) // 1024: p=0.5
	moveBits  = 5
	topValue  = 1 << 24
	probTotal = 1 << probBits
)

// Prob is an adaptive probability state for one binary context.
type Prob uint16

// NewProbs allocates n contexts initialized to p=0.5.
func NewProbs(n int) []Prob {
	p := make([]Prob, n)
	for i := range p {
		p[i] = probInit
	}
	return p
}

// Encoder writes a binary range-coded stream.
type Encoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

// NewEncoder returns an encoder with the given output capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{rng: 0xFFFFFFFF, cacheSize: 1, out: make([]byte, 0, capacity)}
}

func (e *Encoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		carry := byte(e.low >> 32)
		for ; e.cacheSize > 0; e.cacheSize-- {
			e.out = append(e.out, e.cache+carry)
			e.cache = 0xFF
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = e.low << 8 & 0xFFFFFFFF
}

// EncodeBit codes one bit under the adaptive context *p.
func (e *Encoder) EncodeBit(p *Prob, bit int) {
	bound := e.rng >> probBits * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (probTotal - *p) >> moveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> moveBits
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeDirect codes n bits of v (MSB first) at fixed probability 0.5.
func (e *Encoder) EncodeDirect(v uint32, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		e.rng >>= 1
		bit := v >> uint(i) & 1
		if bit == 1 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.rng <<= 8
			e.shiftLow()
		}
	}
}

// Finish flushes the coder and returns the complete byte stream.
func (e *Encoder) Finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// Len reports the number of bytes emitted so far (excluding pending cache).
func (e *Encoder) Len() int { return len(e.out) }

// Decoder reads a stream produced by Encoder.
type Decoder struct {
	code uint32
	rng  uint32
	in   []byte
	pos  int
	err  error
}

// NewDecoder initializes a decoder over the encoded bytes.
func NewDecoder(in []byte) *Decoder {
	d := &Decoder{rng: 0xFFFFFFFF, in: in}
	d.nextByte() // the first output byte of the encoder is always 0
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return d
}

func (d *Decoder) nextByte() byte {
	if d.pos >= len(d.in) {
		d.err = ErrTruncated
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return b
}

// Err reports a truncation encountered at any earlier decode step.
func (d *Decoder) Err() error { return d.err }

// DecodeBit decodes one bit under the adaptive context *p.
func (d *Decoder) DecodeBit(p *Prob) int {
	bound := d.rng >> probBits * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (probTotal - *p) >> moveBits
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> moveBits
		bit = 1
	}
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return bit
}

// DecodeDirect decodes n fixed-probability bits (MSB first).
func (d *Decoder) DecodeDirect(n uint) uint32 {
	var v uint32
	for i := 0; i < int(n); i++ {
		d.rng >>= 1
		d.code -= d.rng
		t := 0 - (d.code >> 31) // 0xFFFFFFFF if code went negative
		d.code += d.rng & t
		v = v<<1 | (t + 1)
		for d.rng < topValue {
			d.rng <<= 8
			d.code = d.code<<8 | uint32(d.nextByte())
		}
	}
	return v
}

// BitTree codes an n-bit symbol MSB-first through a tree of adaptive
// contexts (the LZMA literal/length/slot scheme).
type BitTree struct {
	probs []Prob
	nbits uint
}

// NewBitTree allocates a tree for n-bit symbols.
func NewBitTree(n uint) *BitTree {
	return &BitTree{probs: NewProbs(1 << n), nbits: n}
}

// Encode codes sym (n bits).
func (t *BitTree) Encode(e *Encoder, sym uint32) {
	node := uint32(1)
	for i := int(t.nbits) - 1; i >= 0; i-- {
		bit := int(sym >> uint(i) & 1)
		e.EncodeBit(&t.probs[node], bit)
		node = node<<1 | uint32(bit)
	}
}

// Decode reads an n-bit symbol.
func (t *BitTree) Decode(d *Decoder) uint32 {
	node := uint32(1)
	for i := 0; i < int(t.nbits); i++ {
		bit := d.DecodeBit(&t.probs[node])
		node = node<<1 | uint32(bit)
	}
	return node - 1<<t.nbits
}

// EncodeReverse codes sym LSB-first (used for LZMA alignment bits).
func (t *BitTree) EncodeReverse(e *Encoder, sym uint32) {
	node := uint32(1)
	for i := 0; i < int(t.nbits); i++ {
		bit := int(sym & 1)
		sym >>= 1
		e.EncodeBit(&t.probs[node], bit)
		node = node<<1 | uint32(bit)
	}
}

// DecodeReverse reads an LSB-first symbol.
func (t *BitTree) DecodeReverse(d *Decoder) uint32 {
	node := uint32(1)
	var sym uint32
	for i := 0; i < int(t.nbits); i++ {
		bit := d.DecodeBit(&t.probs[node])
		node = node<<1 | uint32(bit)
		sym |= uint32(bit) << uint(i)
	}
	return sym
}
