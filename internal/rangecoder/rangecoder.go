// Package rangecoder implements an LZMA-style binary range coder with
// adaptive probability models and bit-tree helpers. It is the entropy
// engine of the XZ-class codec: context-modelled arithmetic coding is what
// lets a large-window LZ beat Huffman-based compressors.
package rangecoder

import "positbench/internal/compress"

// ErrTruncated is returned when the decoder runs out of input. It matches
// compress.ErrTruncated (and compress.ErrCorrupt) under errors.Is.
var ErrTruncated = compress.Errorf(compress.ErrTruncated, "rangecoder: truncated stream")

const (
	probBits  = 11
	probInit  = 1 << (probBits - 1) // 1024: p=0.5
	moveBits  = 5
	topValue  = 1 << 24
	probTotal = 1 << probBits
)

// Prob is an adaptive probability state for one binary context.
type Prob uint16

// NewProbs allocates n contexts initialized to p=0.5.
func NewProbs(n int) []Prob {
	p := make([]Prob, n)
	for i := range p {
		p[i] = probInit
	}
	return p
}

// Encoder writes a binary range-coded stream.
type Encoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

// NewEncoder returns an encoder with the given output capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{rng: 0xFFFFFFFF, cacheSize: 1, out: make([]byte, 0, capacity)}
}

func (e *Encoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		carry := byte(e.low >> 32)
		for ; e.cacheSize > 0; e.cacheSize-- {
			e.out = append(e.out, e.cache+carry)
			e.cache = 0xFF
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = e.low << 8 & 0xFFFFFFFF
}

// EncodeBit codes one bit under the adaptive context *p.
func (e *Encoder) EncodeBit(p *Prob, bit int) {
	bound := e.rng >> probBits * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (probTotal - *p) >> moveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> moveBits
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeDirect codes n bits of v (MSB first) at fixed probability 0.5.
func (e *Encoder) EncodeDirect(v uint32, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		e.rng >>= 1
		bit := v >> uint(i) & 1
		if bit == 1 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.rng <<= 8
			e.shiftLow()
		}
	}
}

// Finish flushes the coder and returns the complete byte stream.
func (e *Encoder) Finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// Len reports the number of bytes emitted so far (excluding pending cache).
func (e *Encoder) Len() int { return len(e.out) }

// Decoder reads a stream produced by Encoder.
type Decoder struct {
	code uint32
	rng  uint32
	in   []byte
	pos  int
	err  error
}

// NewDecoder initializes a decoder over the encoded bytes.
func NewDecoder(in []byte) *Decoder {
	d := &Decoder{rng: 0xFFFFFFFF, in: in}
	d.nextByte() // the first output byte of the encoder is always 0
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return d
}

func (d *Decoder) nextByte() byte {
	if d.pos >= len(d.in) {
		d.err = ErrTruncated
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return b
}

// Err reports a truncation encountered at any earlier decode step.
func (d *Decoder) Err() error { return d.err }

// DecodeBit decodes one bit under the adaptive context *p. Like DecodeTree
// it selects with borrow masks instead of a data-dependent branch.
func (d *Decoder) DecodeBit(p *Prob) int {
	pv := uint32(*p)
	bound := d.rng >> probBits * pv
	t := uint64(d.code) - uint64(bound)
	sel := uint32(t >> 32) // all-ones when code < bound (bit 0)
	d.code = uint32(t) + bound&sel
	d.rng = bound&sel | (d.rng-bound)&^sel
	down := pv - pv>>moveBits
	*p = Prob(down + ((probTotal-pv)>>moveBits+pv>>moveBits)&sel)
	if d.rng < topValue {
		d.normalize()
	}
	return int(sel + 1)
}

// normalize refills the range register. Outlined from the decode fast paths:
// adaptive probabilities are clamped far from 0 and 1, so one decode step
// shrinks rng by at most ~66x and a single byte shift restores the invariant
// — the loop runs exactly once whenever it is entered.
func (d *Decoder) normalize() {
	for d.rng < topValue {
		var b byte
		if d.pos < len(d.in) {
			b = d.in[d.pos]
			d.pos++
		} else {
			d.err = ErrTruncated
		}
		d.rng <<= 8
		d.code = d.code<<8 | uint32(b)
	}
}

// DecodeTree walks nbits adaptive contexts MSB-first through the implicit
// tree rooted at probs[1] and returns the node index past the leaves
// (callers subtract 1<<nbits for the symbol). The range registers stay in
// locals across all nbits steps instead of round-tripping through the
// struct on every bit — this is the hottest loop of the XZ-class decoder.
func (d *Decoder) DecodeTree(probs []Prob, nbits uint) uint32 {
	// Reslice to the tree size: indexed nodes satisfy node&mask == node and
	// stay below len(probs), so the loop body runs without bounds checks.
	mask := uint32(1)<<nbits - 1
	probs = probs[:mask+1]
	code, rng := d.code, d.rng
	in, pos := d.in, d.pos
	node := uint32(1)
	for i := uint(0); i < nbits; i++ {
		pv := uint32(probs[node&mask])
		bound := rng >> probBits * pv
		// Branch-free select via borrow masks: sel is all-ones when
		// code < bound (bit 0). The decoded bits of noisy float mantissas
		// are near-random, so a branchy walk would mispredict on most of
		// them; mask arithmetic keeps the pipeline full.
		t := uint64(code) - uint64(bound)
		sel := uint32(t >> 32)
		code = uint32(t) + bound&sel
		rng = bound&sel | (rng-bound)&^sel
		down := pv - pv>>moveBits
		probs[node&mask] = Prob(down + ((probTotal-pv)>>moveBits+pv>>moveBits)&sel)
		node = node<<1 | (sel + 1)
		// Single-shift normalize: probabilities are clamped to
		// [31, 2017]/2048, so one step shrinks rng at most ~66x and one
		// byte refill always restores rng >= topValue (see normalize).
		if rng < topValue {
			var b byte
			if pos < len(in) {
				b = in[pos]
				pos++
			} else {
				d.err = ErrTruncated
			}
			rng <<= 8
			code = code<<8 | uint32(b)
		}
	}
	d.code, d.rng, d.pos = code, rng, pos
	return node
}

// DecodeLiteralRun decodes a run of LZMA (isMatch=0, literal) symbol pairs
// with the range state held in registers across the entire run — the
// steady-state loop of the XZ-class decoder, where per-symbol function
// calls and struct round-trips would otherwise dominate. isMatch must hold
// the four literal-follows-literal position contexts (indexed by output
// position & 3); literals holds the 8 LZMA literal contexts (0x300 probs
// each) indexed by the top 3 bits of the previous byte. The run ends when
// an isMatch bit decodes to 1 (returns hitMatch=true with that bit
// consumed) or when out reaches max bytes.
func (d *Decoder) DecodeLiteralRun(isMatch []Prob, literals [][]Prob, out []byte, max int) (res []byte, hitMatch bool) {
	code, rng := d.code, d.rng
	in, pos := d.in, d.pos
	im := isMatch[:4]
	n := len(out)
	prev := byte(0) // previous decoded byte, kept in a register for the ctx
	if n > 0 {
		prev = out[n-1]
	}
	impv := uint32(im[n&3])
	for n < max {
		// Make room for the next stretch so the inner loop writes by index;
		// the grow-and-back-off keeps append's amortized doubling.
		if n == cap(out) {
			out = append(out[:n], 0)
		}
		buf := out[:cap(out)]
		limit := max
		if len(buf) < max {
			limit = len(buf)
		}
		for n < limit {
			pv := impv
			bound := rng >> probBits * pv
			t := uint64(code) - uint64(bound)
			sel := uint32(t >> 32)
			code = uint32(t) + bound&sel
			rng = bound&sel | (rng-bound)&^sel
			down := pv - pv>>moveBits
			im[n&3] = Prob(down + ((probTotal-pv)>>moveBits+pv>>moveBits)&sel)
			if rng < topValue {
				var b byte
				if pos < len(in) {
					b = in[pos]
					pos++
				} else {
					d.err = ErrTruncated
				}
				rng <<= 8
				code = code<<8 | uint32(b)
			}
			if sel == 0 { // isMatch = 1: a match follows
				d.code, d.rng, d.pos = code, rng, pos
				return out[:n], true
			}
			// Preload the next position's isMatch probability (a different
			// slot than the one updated above, since the context rotates with
			// n) so the load resolves during the tree walk below.
			impv = uint32(im[(n+1)&3])
			// The literal is an 8-level tree walk, fully unrolled: per-level
			// constant index masks prove every access below len 512 (so no
			// bounds checks), and both children are loaded before sel
			// resolves, keeping the probability load off the loop-carried
			// dependency chain. The matched-mode contexts sharing the slice
			// above index 255 make the speculative reads harmless.
			probs := literals[prev>>5][:512]
			node := uint32(1)
			lpv := uint32(probs[1])
			var child, pv0, pv1 uint32
			// level 0
			bound = rng >> probBits * lpv
			t = uint64(code) - uint64(bound)
			sel = uint32(t >> 32)
			code = uint32(t) + bound&sel
			rng = bound&sel | (rng-bound)&^sel
			probs[node&0x1] = Prob(lpv - lpv>>moveBits + ((probTotal-lpv)>>moveBits+lpv>>moveBits)&sel)
			child = node << 1
			pv0 = uint32(probs[child&0x3])
			pv1 = uint32(probs[(child|1)&0x3])
			node = child | (sel + 1)
			lpv = pv1 ^ (pv1^pv0)&sel
			if rng < topValue {
				var b byte
				if pos < len(in) {
					b = in[pos]
					pos++
				} else {
					d.err = ErrTruncated
				}
				rng <<= 8
				code = code<<8 | uint32(b)
			}
			// level 1
			bound = rng >> probBits * lpv
			t = uint64(code) - uint64(bound)
			sel = uint32(t >> 32)
			code = uint32(t) + bound&sel
			rng = bound&sel | (rng-bound)&^sel
			probs[node&0x3] = Prob(lpv - lpv>>moveBits + ((probTotal-lpv)>>moveBits+lpv>>moveBits)&sel)
			child = node << 1
			pv0 = uint32(probs[child&0x7])
			pv1 = uint32(probs[(child|1)&0x7])
			node = child | (sel + 1)
			lpv = pv1 ^ (pv1^pv0)&sel
			if rng < topValue {
				var b byte
				if pos < len(in) {
					b = in[pos]
					pos++
				} else {
					d.err = ErrTruncated
				}
				rng <<= 8
				code = code<<8 | uint32(b)
			}
			// level 2
			bound = rng >> probBits * lpv
			t = uint64(code) - uint64(bound)
			sel = uint32(t >> 32)
			code = uint32(t) + bound&sel
			rng = bound&sel | (rng-bound)&^sel
			probs[node&0x7] = Prob(lpv - lpv>>moveBits + ((probTotal-lpv)>>moveBits+lpv>>moveBits)&sel)
			child = node << 1
			pv0 = uint32(probs[child&0xf])
			pv1 = uint32(probs[(child|1)&0xf])
			node = child | (sel + 1)
			lpv = pv1 ^ (pv1^pv0)&sel
			if rng < topValue {
				var b byte
				if pos < len(in) {
					b = in[pos]
					pos++
				} else {
					d.err = ErrTruncated
				}
				rng <<= 8
				code = code<<8 | uint32(b)
			}
			// level 3
			bound = rng >> probBits * lpv
			t = uint64(code) - uint64(bound)
			sel = uint32(t >> 32)
			code = uint32(t) + bound&sel
			rng = bound&sel | (rng-bound)&^sel
			probs[node&0xf] = Prob(lpv - lpv>>moveBits + ((probTotal-lpv)>>moveBits+lpv>>moveBits)&sel)
			child = node << 1
			pv0 = uint32(probs[child&0x1f])
			pv1 = uint32(probs[(child|1)&0x1f])
			node = child | (sel + 1)
			lpv = pv1 ^ (pv1^pv0)&sel
			if rng < topValue {
				var b byte
				if pos < len(in) {
					b = in[pos]
					pos++
				} else {
					d.err = ErrTruncated
				}
				rng <<= 8
				code = code<<8 | uint32(b)
			}
			// level 4
			bound = rng >> probBits * lpv
			t = uint64(code) - uint64(bound)
			sel = uint32(t >> 32)
			code = uint32(t) + bound&sel
			rng = bound&sel | (rng-bound)&^sel
			probs[node&0x1f] = Prob(lpv - lpv>>moveBits + ((probTotal-lpv)>>moveBits+lpv>>moveBits)&sel)
			child = node << 1
			pv0 = uint32(probs[child&0x3f])
			pv1 = uint32(probs[(child|1)&0x3f])
			node = child | (sel + 1)
			lpv = pv1 ^ (pv1^pv0)&sel
			if rng < topValue {
				var b byte
				if pos < len(in) {
					b = in[pos]
					pos++
				} else {
					d.err = ErrTruncated
				}
				rng <<= 8
				code = code<<8 | uint32(b)
			}
			// level 5
			bound = rng >> probBits * lpv
			t = uint64(code) - uint64(bound)
			sel = uint32(t >> 32)
			code = uint32(t) + bound&sel
			rng = bound&sel | (rng-bound)&^sel
			probs[node&0x3f] = Prob(lpv - lpv>>moveBits + ((probTotal-lpv)>>moveBits+lpv>>moveBits)&sel)
			child = node << 1
			pv0 = uint32(probs[child&0x7f])
			pv1 = uint32(probs[(child|1)&0x7f])
			node = child | (sel + 1)
			lpv = pv1 ^ (pv1^pv0)&sel
			if rng < topValue {
				var b byte
				if pos < len(in) {
					b = in[pos]
					pos++
				} else {
					d.err = ErrTruncated
				}
				rng <<= 8
				code = code<<8 | uint32(b)
			}
			// level 6
			bound = rng >> probBits * lpv
			t = uint64(code) - uint64(bound)
			sel = uint32(t >> 32)
			code = uint32(t) + bound&sel
			rng = bound&sel | (rng-bound)&^sel
			probs[node&0x7f] = Prob(lpv - lpv>>moveBits + ((probTotal-lpv)>>moveBits+lpv>>moveBits)&sel)
			child = node << 1
			pv0 = uint32(probs[child&0xff])
			pv1 = uint32(probs[(child|1)&0xff])
			node = child | (sel + 1)
			lpv = pv1 ^ (pv1^pv0)&sel
			if rng < topValue {
				var b byte
				if pos < len(in) {
					b = in[pos]
					pos++
				} else {
					d.err = ErrTruncated
				}
				rng <<= 8
				code = code<<8 | uint32(b)
			}
			// level 7
			bound = rng >> probBits * lpv
			t = uint64(code) - uint64(bound)
			sel = uint32(t >> 32)
			code = uint32(t) + bound&sel
			rng = bound&sel | (rng-bound)&^sel
			probs[node&0xff] = Prob(lpv - lpv>>moveBits + ((probTotal-lpv)>>moveBits+lpv>>moveBits)&sel)
			node = node<<1 | (sel + 1)
			if rng < topValue {
				var b byte
				if pos < len(in) {
					b = in[pos]
					pos++
				} else {
					d.err = ErrTruncated
				}
				rng <<= 8
				code = code<<8 | uint32(b)
			}
			prev = byte(node)
			buf[n] = prev
			n++
		}
		out = buf[:n]
	}
	d.code, d.rng, d.pos = code, rng, pos
	return out[:n], false
}

// DecodeTreeMatched is the LZMA matched-literal walk: while decoded bits
// agree with matchByte the context set (1+matchBit)<<8 applies; on the first
// divergence it falls back to the plain tree. Register-local like DecodeTree.
func (d *Decoder) DecodeTreeMatched(probs []Prob, matchByte byte) uint32 {
	code, rng := d.code, d.rng
	in, pos := d.in, d.pos
	node := uint32(1)
	match := uint32(matchByte)
	for node < 0x100 {
		match <<= 1
		matchBit := match >> 8 & 1
		idx := (1+matchBit)<<8 + node
		pv := uint32(probs[idx])
		bound := rng >> probBits * pv
		t := uint64(code) - uint64(bound)
		sel := uint32(t >> 32)
		code = uint32(t) + bound&sel
		rng = bound&sel | (rng-bound)&^sel
		down := pv - pv>>moveBits
		probs[idx] = Prob(down + ((probTotal-pv)>>moveBits+pv>>moveBits)&sel)
		bit := sel + 1
		node = node<<1 | bit
		if rng < topValue {
			var b byte
			if pos < len(in) {
				b = in[pos]
				pos++
			} else {
				d.err = ErrTruncated
			}
			rng <<= 8
			code = code<<8 | uint32(b)
		}
		if matchBit != bit {
			// Diverged: finish with the plain tree contexts.
			for node < 0x100 {
				pv := uint32(probs[node])
				bound := rng >> probBits * pv
				t := uint64(code) - uint64(bound)
				sel := uint32(t >> 32)
				code = uint32(t) + bound&sel
				rng = bound&sel | (rng-bound)&^sel
				down := pv - pv>>moveBits
				probs[node] = Prob(down + ((probTotal-pv)>>moveBits+pv>>moveBits)&sel)
				node = node<<1 | (sel + 1)
				if rng < topValue {
					var b byte
					if pos < len(in) {
						b = in[pos]
						pos++
					} else {
						d.err = ErrTruncated
					}
					rng <<= 8
					code = code<<8 | uint32(b)
				}
			}
			break
		}
	}
	d.code, d.rng, d.pos = code, rng, pos
	return node
}

// DecodeTreeReverse is DecodeTree with LSB-first bit order, returning the
// decoded symbol directly.
func (d *Decoder) DecodeTreeReverse(probs []Prob, nbits uint) uint32 {
	code, rng := d.code, d.rng
	in, pos := d.in, d.pos
	node := uint32(1)
	var sym uint32
	for i := uint(0); i < nbits; i++ {
		p := &probs[node]
		bound := rng >> probBits * uint32(*p)
		if code < bound {
			rng = bound
			*p += (probTotal - *p) >> moveBits
			node = node << 1
		} else {
			code -= bound
			rng -= bound
			*p -= *p >> moveBits
			node = node<<1 | 1
			sym |= 1 << i
		}
		for rng < topValue {
			var b byte
			if pos < len(in) {
				b = in[pos]
				pos++
			} else {
				d.err = ErrTruncated
			}
			rng <<= 8
			code = code<<8 | uint32(b)
		}
	}
	d.code, d.rng, d.pos = code, rng, pos
	return sym
}

// DecodeDirect decodes n fixed-probability bits (MSB first).
func (d *Decoder) DecodeDirect(n uint) uint32 {
	var v uint32
	for i := 0; i < int(n); i++ {
		d.rng >>= 1
		d.code -= d.rng
		t := 0 - (d.code >> 31) // 0xFFFFFFFF if code went negative
		d.code += d.rng & t
		v = v<<1 | (t + 1)
		if d.rng < topValue {
			d.normalize()
		}
	}
	return v
}

// BitTree codes an n-bit symbol MSB-first through a tree of adaptive
// contexts (the LZMA literal/length/slot scheme).
type BitTree struct {
	probs []Prob
	nbits uint
}

// NewBitTree allocates a tree for n-bit symbols.
func NewBitTree(n uint) *BitTree {
	return &BitTree{probs: NewProbs(1 << n), nbits: n}
}

// Encode codes sym (n bits).
func (t *BitTree) Encode(e *Encoder, sym uint32) {
	node := uint32(1)
	for i := int(t.nbits) - 1; i >= 0; i-- {
		bit := int(sym >> uint(i) & 1)
		e.EncodeBit(&t.probs[node], bit)
		node = node<<1 | uint32(bit)
	}
}

// Decode reads an n-bit symbol.
func (t *BitTree) Decode(d *Decoder) uint32 {
	return d.DecodeTree(t.probs, t.nbits) - 1<<t.nbits
}

// EncodeReverse codes sym LSB-first (used for LZMA alignment bits).
func (t *BitTree) EncodeReverse(e *Encoder, sym uint32) {
	node := uint32(1)
	for i := 0; i < int(t.nbits); i++ {
		bit := int(sym & 1)
		sym >>= 1
		e.EncodeBit(&t.probs[node], bit)
		node = node<<1 | uint32(bit)
	}
}

// DecodeReverse reads an LSB-first symbol.
func (t *BitTree) DecodeReverse(d *Decoder) uint32 {
	return d.DecodeTreeReverse(t.probs, t.nbits)
}
