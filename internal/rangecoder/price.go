package rangecoder

// Price estimation: the cost, in 1/16-bit units, of coding a bit under an
// adaptive context at its current probability. Optimal parsers use these
// prices to compare encodings without touching coder state (LZMA's
// GetPrice machinery).

const (
	// PriceShift is the fixed-point shift of all price values: a price of
	// 16 is one bit.
	PriceShift = 4
	priceScale = 1 << PriceShift
)

var probPrices [probTotal >> 4]uint32

func init() {
	// LZMA's ProbPrices construction (LzmaEnc.c): for each quantized
	// probability p = (16*k + 8)/2048, square w four times, counting
	// normalization shifts; the result approximates -log2(p) in 1/16 bits.
	for k := range probPrices {
		w := uint32(16*k + 8)
		bitCount := uint32(0)
		for j := 0; j < PriceShift; j++ {
			w *= w
			bitCount <<= 1
			for w >= 1<<16 {
				w >>= 1
				bitCount++
			}
		}
		probPrices[k] = probBits<<PriceShift - 15 - bitCount
	}
}

// Price returns the cost of coding bit under context p.
func (p Prob) Price(bit int) uint32 {
	if bit == 0 {
		return probPrices[p>>PriceShift]
	}
	return probPrices[(probTotal-p)>>PriceShift]
}

// Price returns the cost of coding sym through the tree.
func (t *BitTree) Price(sym uint32) uint32 {
	price := uint32(0)
	node := uint32(1)
	for i := int(t.nbits) - 1; i >= 0; i-- {
		bit := int(sym >> uint(i) & 1)
		price += t.probs[node].Price(bit)
		node = node<<1 | uint32(bit)
	}
	return price
}

// PriceReverse returns the cost of coding sym LSB-first through the tree.
func (t *BitTree) PriceReverse(sym uint32) uint32 {
	price := uint32(0)
	node := uint32(1)
	for i := 0; i < int(t.nbits); i++ {
		bit := int(sym & 1)
		sym >>= 1
		price += t.probs[node].Price(bit)
		node = node<<1 | uint32(bit)
	}
	return price
}

// DirectPrice returns the cost of n fixed-probability bits.
func DirectPrice(n uint) uint32 { return uint32(n) << PriceShift }
