package rangecoder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitRoundtrip(t *testing.T) {
	bits := []int{0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 1, 1, 0}
	e := NewEncoder(64)
	ep := NewProbs(1)
	for _, b := range bits {
		e.EncodeBit(&ep[0], b)
	}
	buf := e.Finish()
	d := NewDecoder(buf)
	dp := NewProbs(1)
	for i, want := range bits {
		if got := d.DecodeBit(&dp[0]); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestSkewedCompresses(t *testing.T) {
	// 10000 mostly-zero bits under one adaptive context must compress far
	// below 1250 bytes.
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 10000)
	for i := range bits {
		if rng.Intn(100) == 0 {
			bits[i] = 1
		}
	}
	e := NewEncoder(2048)
	ep := NewProbs(1)
	for _, b := range bits {
		e.EncodeBit(&ep[0], b)
	}
	buf := e.Finish()
	if len(buf) > 300 {
		t.Fatalf("skewed stream compressed to %d bytes, expected < 300", len(buf))
	}
	d := NewDecoder(buf)
	dp := NewProbs(1)
	for i, want := range bits {
		if got := d.DecodeBit(&dp[0]); got != want {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestDirectBits(t *testing.T) {
	vals := []uint32{0, 1, 0xFF, 0x12345678, 0xFFFFFFFF}
	widths := []uint{1, 2, 8, 32, 32}
	e := NewEncoder(64)
	for i, v := range vals {
		e.EncodeDirect(v&(1<<widths[i]-1), widths[i])
	}
	buf := e.Finish()
	d := NewDecoder(buf)
	for i, v := range vals {
		want := v & (1<<widths[i] - 1)
		if got := d.DecodeDirect(widths[i]); got != want {
			t.Fatalf("val %d: got %#x want %#x", i, got, want)
		}
	}
}

func TestMixedRoundtripQuick(t *testing.T) {
	f := func(data []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEncoder(len(data) * 2)
		eProbs := NewProbs(16)
		ops := make([]int, len(data)) // 0: context bit, 1: direct byte
		for i, b := range data {
			ops[i] = rng.Intn(2)
			if ops[i] == 0 {
				ctx := int(b) & 15
				e.EncodeBit(&eProbs[ctx], int(b>>7)&1)
			} else {
				e.EncodeDirect(uint32(b), 8)
			}
		}
		buf := e.Finish()
		d := NewDecoder(buf)
		dProbs := NewProbs(16)
		for i, b := range data {
			if ops[i] == 0 {
				ctx := int(b) & 15
				if d.DecodeBit(&dProbs[ctx]) != int(b>>7)&1 {
					return false
				}
			} else {
				if d.DecodeDirect(8) != uint32(b) {
					return false
				}
			}
		}
		return d.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitTree(t *testing.T) {
	for _, nbits := range []uint{1, 3, 8} {
		e := NewEncoder(1024)
		et := NewBitTree(nbits)
		rng := rand.New(rand.NewSource(int64(nbits)))
		syms := make([]uint32, 500)
		for i := range syms {
			syms[i] = uint32(rng.Intn(1 << nbits))
			et.Encode(e, syms[i])
		}
		buf := e.Finish()
		d := NewDecoder(buf)
		dt := NewBitTree(nbits)
		for i, want := range syms {
			if got := dt.Decode(d); got != want {
				t.Fatalf("nbits=%d sym %d: got %d want %d", nbits, i, got, want)
			}
		}
	}
}

func TestBitTreeReverse(t *testing.T) {
	e := NewEncoder(1024)
	et := NewBitTree(4)
	syms := []uint32{0, 15, 7, 8, 3, 12}
	for _, s := range syms {
		et.EncodeReverse(e, s)
	}
	buf := e.Finish()
	d := NewDecoder(buf)
	dt := NewBitTree(4)
	for i, want := range syms {
		if got := dt.DecodeReverse(d); got != want {
			t.Fatalf("sym %d: got %d want %d", i, got, want)
		}
	}
}

func TestTruncatedStream(t *testing.T) {
	d := NewDecoder([]byte{0})
	p := NewProbs(1)
	for i := 0; i < 100; i++ {
		d.DecodeBit(&p[0])
	}
	if d.Err() == nil {
		t.Fatal("expected truncation error")
	}
}

func TestAdaptationSymmetry(t *testing.T) {
	// Encoder and decoder probability states must evolve identically.
	rng := rand.New(rand.NewSource(7))
	bits := make([]int, 5000)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	e := NewEncoder(4096)
	ep := NewProbs(4)
	for i, b := range bits {
		e.EncodeBit(&ep[i%4], b)
	}
	buf := e.Finish()
	d := NewDecoder(buf)
	dp := NewProbs(4)
	for i, want := range bits {
		if d.DecodeBit(&dp[i%4]) != want {
			t.Fatalf("bit %d", i)
		}
	}
	for i := range ep {
		if ep[i] != dp[i] {
			t.Fatalf("prob state %d diverged: %d vs %d", i, ep[i], dp[i])
		}
	}
}

func BenchmarkEncodeBit(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	bits := make([]int, 1<<20)
	for i := range bits {
		if rng.Intn(10) == 0 {
			bits[i] = 1
		}
	}
	b.SetBytes(int64(len(bits) / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(1 << 17)
		p := NewProbs(1)
		for _, bit := range bits {
			e.EncodeBit(&p[0], bit)
		}
		e.Finish()
	}
}
