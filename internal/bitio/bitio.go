// Package bitio provides MSB-first bit-level readers and writers plus
// variable-length integer helpers. It is the shared substrate for the
// entropy coders (Huffman, range coder) and the LC coding components.
package bitio

import (
	"encoding/binary"

	"positbench/internal/compress"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the stream.
// It matches compress.ErrTruncated (and therefore compress.ErrCorrupt) under
// errors.Is, so decoders built on bitio inherit the error taxonomy for free.
var ErrUnexpectedEOF = compress.Errorf(compress.ErrTruncated, "bitio: unexpected end of stream")

// Writer accumulates bits MSB-first into a byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, right-aligned (low nbit bits are valid)
	nbit uint   // number of pending bits in cur (always 0..7 between calls)
}

// NewWriter returns a Writer whose internal buffer has the given capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nbit = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n may be 0..64.
// Whole output bytes are assembled in a 64-bit accumulator and appended with a
// single big-endian store instead of byte-at-a-time shifting.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	if w.nbit+n > 64 {
		// Rare (only reachable for n >= 58): split so each half fits the
		// accumulator together with the pending bits.
		w.WriteBits(v>>32, n-32)
		n = 32
		v &= 0xFFFFFFFF
	}
	acc := w.cur<<(n&63) | v // n == 64 implies nbit == 0 and cur == 0
	total := w.nbit + n
	nbytes := total >> 3
	rem := total & 7
	if nbytes > 0 {
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], acc>>rem<<(64-8*nbytes))
		w.buf = append(w.buf, tmp[:nbytes]...)
		acc &= 1<<rem - 1
	}
	w.cur, w.nbit = acc, rem
}

// WriteByte appends an aligned or unaligned full byte.
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint64(b), 8)
	return nil
}

// WriteBytes appends a byte slice.
func (w *Writer) WriteBytes(p []byte) {
	if w.nbit == 0 {
		w.buf = append(w.buf, p...)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Align pads the stream with zero bits up to the next byte boundary.
func (w *Writer) Align() {
	if w.nbit > 0 {
		w.cur <<= 8 - w.nbit
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nbit = 0, 0
	}
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// Bytes flushes (aligning to a byte boundary) and returns the written bytes.
// The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nbit = 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
//
// It keeps a 64-bit lookahead word: refill loads 8 source bytes with one
// big-endian load whenever at least 8 remain, so steady-state ReadBits is a
// shift-and-mask with no per-byte loop. Invariants:
//
//   - cur holds the next nbit unconsumed stream bits, MSB-aligned (bit 63
//     is the very next bit).
//   - bits of cur at positions below the top nbit are either zero or equal
//     to the true upcoming stream bits (partial prefix of the next source
//     byte deposited by a wide refill). Zero-padded peeks are therefore
//     safe at end of stream, where those bits are always zero.
//   - after refill, nbit >= 57 unless fewer bits remain in the source, in
//     which case every remaining bit is in cur.
type Reader struct {
	buf  []byte
	pos  int    // next unconsumed byte index; bits before pos*8 are consumed or in cur
	cur  uint64 // upcoming bits, MSB-aligned
	nbit uint   // number of valid bits in cur
}

// NewReader returns a Reader over p. The reader does not copy p.
func NewReader(p []byte) *Reader {
	return &Reader{buf: p}
}

// Reset rewinds the reader to the start of p, reusing the struct.
func (r *Reader) Reset(p []byte) {
	r.buf, r.pos, r.cur, r.nbit = p, 0, 0, 0
}

// refill tops the lookahead word up to >= 57 bits (or to end of stream).
func (r *Reader) refill() {
	if r.pos+8 <= len(r.buf) {
		if r.nbit > 56 {
			return
		}
		w := binary.BigEndian.Uint64(r.buf[r.pos:])
		r.cur |= w >> r.nbit
		take := (64 - r.nbit) >> 3 // whole bytes that fit
		r.pos += int(take)
		r.nbit += take * 8
		return
	}
	// Tail: fewer than 8 source bytes left, load one at a time.
	for r.pos < len(r.buf) && r.nbit <= 56 {
		r.cur |= uint64(r.buf[r.pos]) << (56 - r.nbit)
		r.pos++
		r.nbit += 8
	}
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.nbit > 0 {
		b := uint(r.cur >> 63)
		r.cur <<= 1
		r.nbit--
		return b, nil
	}
	v, err := r.readBitsSlow(1)
	return uint(v), err
}

// ReadBits reads n bits (0..64), most significant first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n <= r.nbit {
		v := r.cur >> (64 - n) // n == 0 yields 0: shift >= width is defined as 0
		r.cur <<= n
		r.nbit -= n
		return v, nil
	}
	return r.readBitsSlow(n)
}

// readBitsSlow is the refilling path of ReadBits; it also serves ReadBit and
// Consume when the lookahead runs dry.
func (r *Reader) readBitsSlow(n uint) (uint64, error) {
	var v uint64
	for n > 0 {
		if r.nbit == 0 {
			r.refill()
			if r.nbit == 0 {
				return 0, ErrUnexpectedEOF
			}
		}
		take := n
		if take > r.nbit {
			take = r.nbit
		}
		v = v<<take | r.cur>>(64-take)
		r.cur <<= take
		r.nbit -= take
		n -= take
	}
	return v, nil
}

// PeekBits returns the next n bits (n <= 56) MSB-first without consuming
// them. When fewer than n bits remain in the stream the result is padded
// with zero bits on the right; combine with Remaining (or a failing Consume)
// to detect end of stream.
func (r *Reader) PeekBits(n uint) uint64 {
	if r.nbit < n {
		r.refill()
	}
	return r.cur >> (64 - n)
}

// Consume discards n bits, typically after a PeekBits-based table lookup.
// Consuming past the end of the stream returns ErrUnexpectedEOF.
func (r *Reader) Consume(n uint) error {
	if n <= r.nbit {
		r.cur <<= n
		r.nbit -= n
		return nil
	}
	_, err := r.readBitsSlow(n)
	return err
}

// Lookahead tops up the lookahead word and returns it with its valid bit
// count (>= 57 unless the stream is nearly exhausted). It consumes nothing:
// callers decode from the returned word in registers and settle with Drop.
func (r *Reader) Lookahead() (uint64, uint) {
	if r.nbit <= 56 {
		r.refill()
	}
	return r.cur, r.nbit
}

// Drop discards n bits with no end-of-stream check. The caller must ensure
// n does not exceed the bit count returned by Lookahead; use Consume when
// that is not known.
func (r *Reader) Drop(n uint) {
	r.cur <<= n
	r.nbit -= n
}

// ReadByte reads 8 bits.
func (r *Reader) ReadByte() (byte, error) {
	v, err := r.ReadBits(8)
	return byte(v), err
}

// Align discards bits up to the next byte boundary of the logical stream
// position (the position accounting for the lookahead word, not the raw
// load offset).
func (r *Reader) Align() {
	k := r.nbit & 7
	r.cur <<= k
	r.nbit -= k
}

// Remaining reports the number of unread whole bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nbit)
}

// PutUvarint appends v to buf in unsigned LEB128 form and returns the result.
func PutUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// Uvarint decodes an unsigned LEB128 value from buf, returning the value and
// the number of bytes consumed. A varint that runs off the end of buf is
// ErrTruncated; one whose continuation bytes overflow 64 bits is ErrCorrupt.
func Uvarint(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	if n == 0 {
		return 0, 0, compress.Errorf(compress.ErrTruncated, "bitio: truncated uvarint")
	}
	if n < 0 {
		return 0, 0, compress.Errorf(compress.ErrCorrupt, "bitio: uvarint overflows 64 bits")
	}
	return v, n, nil
}

// PutU32 appends v little-endian.
func PutU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

// U32 reads a little-endian uint32 from the front of buf.
func U32(buf []byte) (uint32, error) {
	if len(buf) < 4 {
		return 0, ErrUnexpectedEOF
	}
	return binary.LittleEndian.Uint32(buf), nil
}

// PutU64 appends v little-endian.
func PutU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// U64 reads a little-endian uint64 from the front of buf.
func U64(buf []byte) (uint64, error) {
	if len(buf) < 8 {
		return 0, ErrUnexpectedEOF
	}
	return binary.LittleEndian.Uint64(buf), nil
}
