// Package bitio provides MSB-first bit-level readers and writers plus
// variable-length integer helpers. It is the shared substrate for the
// entropy coders (Huffman, range coder) and the LC coding components.
package bitio

import (
	"encoding/binary"

	"positbench/internal/compress"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the stream.
// It matches compress.ErrTruncated (and therefore compress.ErrCorrupt) under
// errors.Is, so decoders built on bitio inherit the error taxonomy for free.
var ErrUnexpectedEOF = compress.Errorf(compress.ErrTruncated, "bitio: unexpected end of stream")

// Writer accumulates bits MSB-first into a byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbits
	nbit uint   // number of pending bits in cur (0..7 after flushWords)
}

// NewWriter returns a Writer whose internal buffer has the given capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nbit = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n may be 0..64.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	// Fast path: fill the pending byte, then emit whole bytes.
	for n+w.nbit >= 8 {
		take := 8 - w.nbit
		n -= take
		b := byte(w.cur<<take | v>>n)
		w.buf = append(w.buf, b)
		w.cur, w.nbit = 0, 0
		if n < 64 {
			v &= (1 << n) - 1
		}
	}
	if n > 0 {
		w.cur = w.cur<<n | v
		w.nbit += n
	}
}

// WriteByte appends an aligned or unaligned full byte.
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint64(b), 8)
	return nil
}

// WriteBytes appends a byte slice.
func (w *Writer) WriteBytes(p []byte) {
	if w.nbit == 0 {
		w.buf = append(w.buf, p...)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Align pads the stream with zero bits up to the next byte boundary.
func (w *Writer) Align() {
	if w.nbit > 0 {
		w.cur <<= 8 - w.nbit
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nbit = 0, 0
	}
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// Bytes flushes (aligning to a byte boundary) and returns the written bytes.
// The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nbit = 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int // next byte index
	cur  uint64
	nbit uint
}

// NewReader returns a Reader over p. The reader does not copy p.
func NewReader(p []byte) *Reader {
	return &Reader{buf: p}
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.nbit == 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrUnexpectedEOF
		}
		r.cur = uint64(r.buf[r.pos])
		r.pos++
		r.nbit = 8
	}
	r.nbit--
	return uint(r.cur>>r.nbit) & 1, nil
}

// ReadBits reads n bits (0..64), most significant first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for n > 0 {
		if r.nbit == 0 {
			if r.pos >= len(r.buf) {
				return 0, ErrUnexpectedEOF
			}
			r.cur = uint64(r.buf[r.pos])
			r.pos++
			r.nbit = 8
		}
		take := r.nbit
		if take > n {
			take = n
		}
		r.nbit -= take
		v = v<<take | (r.cur>>r.nbit)&((1<<take)-1)
		n -= take
	}
	return v, nil
}

// ReadByte reads 8 bits.
func (r *Reader) ReadByte() (byte, error) {
	v, err := r.ReadBits(8)
	return byte(v), err
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() { r.nbit = 0 }

// Remaining reports the number of unread whole bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nbit)
}

// PutUvarint appends v to buf in unsigned LEB128 form and returns the result.
func PutUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// Uvarint decodes an unsigned LEB128 value from buf, returning the value and
// the number of bytes consumed. A varint that runs off the end of buf is
// ErrTruncated; one whose continuation bytes overflow 64 bits is ErrCorrupt.
func Uvarint(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	if n == 0 {
		return 0, 0, compress.Errorf(compress.ErrTruncated, "bitio: truncated uvarint")
	}
	if n < 0 {
		return 0, 0, compress.Errorf(compress.ErrCorrupt, "bitio: uvarint overflows 64 bits")
	}
	return v, n, nil
}

// PutU32 appends v little-endian.
func PutU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

// U32 reads a little-endian uint32 from the front of buf.
func U32(buf []byte) (uint32, error) {
	if len(buf) < 4 {
		return 0, ErrUnexpectedEOF
	}
	return binary.LittleEndian.Uint32(buf), nil
}

// PutU64 appends v little-endian.
func PutU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// U64 reads a little-endian uint64 from the front of buf.
func U64(buf []byte) (uint64, error) {
	if len(buf) < 8 {
		return 0, ErrUnexpectedEOF
	}
	return binary.LittleEndian.Uint64(buf), nil
}
