package bitio

import (
	"math/rand"
	"testing"
)

// refTake is the naive MSB-first bit extractor the word-refill Reader is
// checked against: bit i of the stream is bit 7-(i&7) of byte i>>3.
func refTake(buf []byte, pos *int, n uint) (uint64, bool) {
	if *pos+int(n) > len(buf)*8 {
		return 0, false
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b := buf[*pos>>3] >> (7 - uint(*pos&7)) & 1
		v = v<<1 | uint64(b)
		*pos++
	}
	return v, true
}

// TestRefillBoundaries drives the reader over inputs of every length 0..17
// (covering empty, sub-word, exactly-one-word, and word-straddling tails)
// with read widths chosen to land on and around the 64-bit refill edge.
func TestRefillBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	widths := []uint{1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 56, 57, 63, 64}
	for size := 0; size <= 17; size++ {
		buf := make([]byte, size)
		rng.Read(buf)
		for _, first := range widths {
			r := NewReader(buf)
			refPos := 0
			// A leading read of `first` bits desynchronizes the lookahead
			// from the byte grid so later reads straddle the word edge.
			wantV, ok := refTake(buf, &refPos, first)
			gotV, err := r.ReadBits(first)
			if ok != (err == nil) || (ok && gotV != wantV) {
				t.Fatalf("size=%d first=%d: got %x,%v want %x,%v", size, first, gotV, err, wantV, ok)
			}
			if !ok {
				continue // a failed read drains the stream; nothing left to compare
			}
			for {
				n := widths[rng.Intn(len(widths))]
				wantV, ok := refTake(buf, &refPos, n)
				gotV, err := r.ReadBits(n)
				if ok != (err == nil) || (ok && gotV != wantV) {
					t.Fatalf("size=%d n=%d at bit %d: got %x,%v want %x,%v", size, n, refPos, gotV, err, wantV, ok)
				}
				if !ok {
					break
				}
			}
		}
	}
}

// TestPeekConsume checks the table-lookup primitives: peeks do not consume,
// short streams zero-pad, and Consume past the end fails like ReadBits.
func TestPeekConsume(t *testing.T) {
	buf := []byte{0b1011_0110, 0b0101_0101, 0xFF}
	r := NewReader(buf)
	if v := r.PeekBits(4); v != 0b1011 {
		t.Fatalf("peek4 = %b", v)
	}
	if v := r.PeekBits(12); v != 0b1011_0110_0101 {
		t.Fatalf("peek12 = %b", v)
	}
	if err := r.Consume(4); err != nil {
		t.Fatal(err)
	}
	if v := r.PeekBits(8); v != 0b0110_0101 {
		t.Fatalf("after consume, peek8 = %b", v)
	}
	if err := r.Consume(16); err != nil {
		t.Fatal(err)
	}
	if got := r.Remaining(); got != 4 {
		t.Fatalf("Remaining = %d want 4", got)
	}
	// 4 bits (all ones) left: peek of 8 must zero-pad on the right.
	if v := r.PeekBits(8); v != 0b1111_0000 {
		t.Fatalf("tail peek8 = %08b", v)
	}
	if err := r.Consume(8); err != ErrUnexpectedEOF {
		t.Fatalf("consume past end: %v", err)
	}
}

// TestPeekBeyondEmpty checks zero-padding on a stream with nothing left at all.
func TestPeekBeyondEmpty(t *testing.T) {
	r := NewReader(nil)
	if v := r.PeekBits(56); v != 0 {
		t.Fatalf("empty peek = %x", v)
	}
	if err := r.Consume(1); err != ErrUnexpectedEOF {
		t.Fatalf("empty consume: %v", err)
	}
}

func TestAlignMidWord(t *testing.T) {
	// 16 bytes so the first refill loads a full word; Align must round the
	// logical position, not the word-load offset.
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = byte(i + 1)
	}
	r := NewReader(buf)
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	if b, _ := r.ReadByte(); b != 2 {
		t.Fatalf("after align got %d want 2", b)
	}
	if got := r.Remaining(); got != 14*8 {
		t.Fatalf("Remaining = %d want %d", got, 14*8)
	}
}

func TestReaderReset(t *testing.T) {
	r := NewReader([]byte{0xAA})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	r.Reset([]byte{0x55, 0x55})
	if v, err := r.ReadBits(16); err != nil || v != 0x5555 {
		t.Fatalf("after reset: %x, %v", v, err)
	}
}

// FuzzReaderDifferential replays a fuzz-chosen schedule of reads, peeks,
// consumes and aligns against the naive reference reader.
func FuzzReaderDifferential(f *testing.F) {
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF}, []byte{3, 8, 64, 1})
	f.Add(make([]byte, 17), []byte{56, 57, 7, 9})
	f.Add([]byte{0xFF}, []byte{0, 1, 200})
	f.Fuzz(func(t *testing.T, data []byte, schedule []byte) {
		if len(data) > 1<<16 || len(schedule) > 1<<10 {
			t.Skip()
		}
		r := NewReader(data)
		refPos := 0
		for i, op := range schedule {
			n := uint(op & 63)
			switch op >> 6 {
			case 0: // ReadBits
				wantV, ok := refTake(data, &refPos, n)
				gotV, err := r.ReadBits(n)
				if ok != (err == nil) || (ok && gotV != wantV) {
					t.Fatalf("op %d ReadBits(%d): got %x,%v want %x,%v", i, n, gotV, err, wantV, ok)
				}
				if !ok {
					// A failed read drains whatever was left (the historical
					// partial-consumption semantics); resync the reference.
					refPos = len(data) * 8
				}
			case 1: // PeekBits then Consume
				if n > 56 {
					n = 56
				}
				save := refPos
				wantV, ok := refTake(data, &refPos, n)
				refPos = save
				got := r.PeekBits(n)
				if ok && got != wantV {
					t.Fatalf("op %d PeekBits(%d): got %x want %x", i, n, got, wantV)
				}
				wantV, ok = refTake(data, &refPos, n)
				if err := r.Consume(n); ok != (err == nil) {
					t.Fatalf("op %d Consume(%d): err=%v ok=%v", i, n, err, ok)
				}
				if !ok {
					refPos = len(data) * 8
				}
			case 2: // ReadBit
				wantV, ok := refTake(data, &refPos, 1)
				gotV, err := r.ReadBit()
				if ok != (err == nil) || (ok && uint64(gotV) != wantV) {
					t.Fatalf("op %d ReadBit: got %d,%v want %d,%v", i, gotV, err, wantV, ok)
				}
			case 3: // Align
				refPos = (refPos + 7) &^ 7
				if refPos > len(data)*8 {
					refPos = len(data) * 8
				}
				r.Align()
			}
			if want := len(data)*8 - refPos; r.Remaining() != want {
				t.Fatalf("op %d: Remaining = %d want %d", i, r.Remaining(), want)
			}
		}
	})
}

// TestReadBitsNoAllocs locks in the zero-allocation steady state of the
// fast path (satellite allocation-regression gate).
func TestReadBitsNoAllocs(t *testing.T) {
	buf := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(buf)
	r := NewReader(buf)
	n := testing.AllocsPerRun(100, func() {
		r.Reset(buf)
		for {
			if _, err := r.ReadBits(13); err != nil {
				break
			}
		}
	})
	if n != 0 {
		t.Fatalf("ReadBits allocates %v per run, want 0", n)
	}
}

func BenchmarkReadBits(b *testing.B) {
	buf := make([]byte, 1<<16)
	rand.New(rand.NewSource(6)).Read(buf)
	r := NewReader(buf)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		r.Reset(buf)
		for {
			if _, err := r.ReadBits(11); err != nil {
				break
			}
		}
	}
}
