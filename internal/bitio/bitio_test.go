package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBit(1)
	b := w.Bytes()

	r := NewReader(b)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("got %b want 101", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Fatalf("got %x want ff", v)
	}
	if v, _ := r.ReadBits(5); v != 0 {
		t.Fatalf("got %x want 0", v)
	}
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Fatalf("got %x want deadbeef", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Fatalf("got %d want 1", v)
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xFFFF, 4) // only low 4 bits should be kept
	w.WriteBits(0, 4)
	b := w.Bytes()
	if b[0] != 0xF0 {
		t.Fatalf("got %x want f0", b[0])
	}
}

func TestWriteBits64(t *testing.T) {
	w := NewWriter(8)
	const v = uint64(0x0123456789ABCDEF)
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(64)
	if err != nil || got != v {
		t.Fatalf("got %x,%v want %x", got, err, v)
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(1, 1)
	w.Align()
	w.WriteBits(0xAB, 8)
	b := w.Bytes()
	if len(b) != 2 || b[0] != 0x80 || b[1] != 0xAB {
		t.Fatalf("got %x", b)
	}
	r := NewReader(b)
	if v, _ := r.ReadBit(); v != 1 {
		t.Fatal("first bit")
	}
	r.Align()
	if v, _ := r.ReadByte(); v != 0xAB {
		t.Fatalf("got %x want ab", v)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBits(4); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	w := NewWriter(8)
	w.WriteBit(1)
	w.WriteBytes([]byte{0x0F, 0xF0})
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBit(); v != 1 {
		t.Fatal("bit")
	}
	if v, _ := r.ReadByte(); v != 0x0F {
		t.Fatalf("got %x", v)
	}
	if v, _ := r.ReadByte(); v != 0xF0 {
		t.Fatalf("got %x", v)
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter(8)
	if w.BitLen() != 0 {
		t.Fatal("empty BitLen")
	}
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("got %d want 13", w.BitLen())
	}
}

func TestRoundtripQuick(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		if len(vals) > len(widths) {
			vals = vals[:len(widths)]
		} else {
			widths = widths[:len(vals)]
		}
		w := NewWriter(64)
		ws := make([]uint, len(vals))
		for i, v := range vals {
			n := uint(widths[i]%64) + 1
			ws[i] = n
			w.WriteBits(v, n)
		}
		r := NewReader(w.Bytes())
		for i, v := range vals {
			n := ws[i]
			want := v
			if n < 64 {
				want &= (1 << n) - 1
			}
			got, err := r.ReadBits(n)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVarints(t *testing.T) {
	var buf []byte
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1}
	for _, v := range vals {
		buf = PutUvarint(buf, v)
	}
	for _, want := range vals {
		v, n, err := Uvarint(buf)
		if err != nil || v != want {
			t.Fatalf("got %d,%v want %d", v, err, want)
		}
		buf = buf[n:]
	}
	if _, _, err := Uvarint(nil); err == nil {
		t.Fatal("want error on empty")
	}
}

func TestFixedInts(t *testing.T) {
	b := PutU32(nil, 0xCAFEBABE)
	v, err := U32(b)
	if err != nil || v != 0xCAFEBABE {
		t.Fatalf("U32 got %x,%v", v, err)
	}
	b8 := PutU64(nil, 0x0102030405060708)
	v8, err := U64(b8)
	if err != nil || v8 != 0x0102030405060708 {
		t.Fatalf("U64 got %x,%v", v8, err)
	}
	if _, err := U32([]byte{1, 2}); err == nil {
		t.Fatal("want error")
	}
	if _, err := U64([]byte{1, 2}); err == nil {
		t.Fatal("want error")
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatal("reset did not clear")
	}
	w.WriteBits(0xA, 4)
	if !bytes.Equal(w.Bytes(), []byte{0xA0}) {
		t.Fatalf("got %x", w.Bytes())
	}
}

func TestRandomBitStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := NewWriter(1 << 12)
	type item struct {
		v uint64
		n uint
	}
	var items []item
	for i := 0; i < 5000; i++ {
		n := uint(rng.Intn(64)) + 1
		v := rng.Uint64()
		if n < 64 {
			v &= (1 << n) - 1
		}
		items = append(items, item{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes())
	for i, it := range items {
		got, err := r.ReadBits(it.n)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got != it.v {
			t.Fatalf("item %d: got %x want %x (n=%d)", i, got, it.v, it.n)
		}
	}
}
