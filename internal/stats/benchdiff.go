package stats

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Benchmark report diffing: the comparison core of cmd/benchdiff, kept here
// so it is unit-testable without spawning the binary.

// ReadBenchJSON loads a BENCH_compress.json document written by
// WriteBenchJSON.
func ReadBenchJSON(path string) (*BenchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("stats: read bench report: %w", err)
	}
	var r BenchReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("stats: parse bench report %s: %w", path, err)
	}
	return &r, nil
}

// BenchDelta is one metric's old-vs-new comparison. DeltaPct is the relative
// change in percent: negative means the new run is slower.
type BenchDelta struct {
	Codec    string
	Workers  int
	Metric   string // "compress/serial", "decode/parallel", ...
	Old      float64
	New      float64
	DeltaPct float64
}

// BenchDiff is the full comparison of two reports.
type BenchDiff struct {
	Deltas      []BenchDelta
	Regressions []BenchDelta // the subset of Deltas below -threshold
	OnlyOld     []string     // "(codec,workers)" pairs missing from the new report
	OnlyNew     []string     // pairs missing from the old report
}

type benchKey struct {
	codec   string
	workers int
}

// DiffBench compares every throughput metric shared by old and new. A
// metric regresses when its new value is more than threshold percent below
// its old value; metrics absent (zero) on either side are skipped, so a
// report without decode numbers diffs cleanly against one with them.
func DiffBench(oldRep, newRep *BenchReport, threshold float64) *BenchDiff {
	oldBy := map[benchKey]BenchResult{}
	for _, r := range oldRep.Results {
		oldBy[benchKey{r.Codec, r.Workers}] = r
	}
	newBy := map[benchKey]BenchResult{}
	for _, r := range newRep.Results {
		newBy[benchKey{r.Codec, r.Workers}] = r
	}
	d := &BenchDiff{}
	for k := range oldBy {
		if _, ok := newBy[k]; !ok {
			d.OnlyOld = append(d.OnlyOld, fmt.Sprintf("(%s,%d)", k.codec, k.workers))
		}
	}
	for k, nr := range newBy {
		or, ok := oldBy[k]
		if !ok {
			d.OnlyNew = append(d.OnlyNew, fmt.Sprintf("(%s,%d)", k.codec, k.workers))
			continue
		}
		metrics := []struct {
			name     string
			old, new float64
		}{
			{"compress/serial", or.SerialMBps, nr.SerialMBps},
			{"compress/parallel", or.ParallelMBps, nr.ParallelMBps},
			{"decode/serial", or.SerialDecodeMBps, nr.SerialDecodeMBps},
			{"decode/parallel", or.ParallelDecodeMBps, nr.ParallelDecodeMBps},
		}
		for _, m := range metrics {
			if m.old <= 0 || m.new <= 0 {
				continue
			}
			delta := BenchDelta{
				Codec:    k.codec,
				Workers:  k.workers,
				Metric:   m.name,
				Old:      m.old,
				New:      m.new,
				DeltaPct: (m.new - m.old) / m.old * 100,
			}
			d.Deltas = append(d.Deltas, delta)
			if delta.DeltaPct < -threshold {
				d.Regressions = append(d.Regressions, delta)
			}
		}
	}
	sortDeltas := func(s []BenchDelta) {
		sort.Slice(s, func(i, j int) bool {
			a, b := &s[i], &s[j]
			if a.Codec != b.Codec {
				return a.Codec < b.Codec
			}
			if a.Workers != b.Workers {
				return a.Workers < b.Workers
			}
			return a.Metric < b.Metric
		})
	}
	sortDeltas(d.Deltas)
	sortDeltas(d.Regressions)
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	return d
}

// Table renders the diff as a fixed-width text table, regressions marked.
func (d *BenchDiff) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %3s  %-18s %10s %10s %8s\n", "codec", "wk", "metric", "old MB/s", "new MB/s", "delta")
	marked := map[BenchDelta]bool{}
	for _, r := range d.Regressions {
		marked[r] = true
	}
	for _, dl := range d.Deltas {
		mark := ""
		if marked[dl] {
			mark = "  << regression"
		}
		fmt.Fprintf(&b, "%-8s %3d  %-18s %10.2f %10.2f %+7.1f%%%s\n",
			dl.Codec, dl.Workers, dl.Metric, dl.Old, dl.New, dl.DeltaPct, mark)
	}
	for _, s := range d.OnlyOld {
		fmt.Fprintf(&b, "only in old: %s\n", s)
	}
	for _, s := range d.OnlyNew {
		fmt.Fprintf(&b, "only in new: %s\n", s)
	}
	return b.String()
}
