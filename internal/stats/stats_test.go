package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Fatalf("GeoMean(2,8) = %g", g)
	}
	if g := GeoMean([]float64{3}); math.Abs(g-3) > 1e-9 {
		t.Fatalf("single: %g", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("empty: %g", g)
	}
	if g := GeoMean([]float64{1, -1}); g != 0 {
		t.Fatalf("negative input: %g", g)
	}
	if g := GeoMean([]float64{1, 0}); g != 0 {
		t.Fatalf("zero input: %g", g)
	}
}

func TestGeoMeanDampensOutliers(t *testing.T) {
	// The paper's reason for geomean: one huge ratio shouldn't dominate.
	arith := Mean([]float64{1, 1, 1, 100})
	geo := GeoMean([]float64{1, 1, 1, 100})
	if geo >= arith {
		t.Fatalf("geomean %g should be below mean %g", geo, arith)
	}
	if geo > 4 {
		t.Fatalf("geomean %g too sensitive to outlier", geo)
	}
}

func TestGeoMeanQuick(t *testing.T) {
	f := func(xs []float64) bool {
		for i := range xs {
			xs[i] = math.Abs(xs[i])
			if !(xs[i] > 1e-300 && xs[i] < 1e300) {
				xs[i] = 1
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return g >= mn*(1-1e-6) && g <= mx*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %g", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatal("empty mean")
	}
}

func TestPctDelta(t *testing.T) {
	if d := PctDelta(2, 2.1); math.Abs(d-5) > 1e-9 {
		t.Fatalf("delta = %g", d)
	}
	if d := PctDelta(2, 1.9); math.Abs(d+5) > 1e-9 {
		t.Fatalf("delta = %g", d)
	}
	if d := PctDelta(0, 1); d != 0 {
		t.Fatalf("zero base: %g", d)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("A", "Bee")
	tb.AddRow("x", 1.5)
	tb.AddRow("longer-cell", "v")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %q", lines)
	}
	if !strings.Contains(lines[0], "A") || !strings.Contains(lines[0], "Bee") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(out, "1.500") {
		t.Fatalf("float formatting: %s", out)
	}
	// All rows align to the same width.
	if len(lines[2]) < len("longer-cell") {
		t.Fatal("width not expanded")
	}
}

func TestBar(t *testing.T) {
	s := Bar("xz", 2.0, 4.0, 10)
	if !strings.Contains(s, "#####") || strings.Contains(s, "######") {
		t.Fatalf("bar: %q", s)
	}
	if !strings.Contains(s, "2.000") {
		t.Fatalf("value missing: %q", s)
	}
	// Value above max clamps.
	if s := Bar("a", 10, 1, 5); !strings.Contains(s, "#####") {
		t.Fatalf("clamp: %q", s)
	}
	if s := Bar("a", 1, 0, 0); !strings.Contains(s, "1.000") {
		t.Fatalf("zero max: %q", s)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys: %v", keys)
	}
}
