package stats

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Benchmark regression records: `make bench` writes BENCH_compress.json so
// throughput changes (serial vs parallel, per codec) are diffable across
// commits and machines. The schema is deliberately flat for jq-ability.

// BenchResult is one codec's serial-vs-parallel throughput comparison.
type BenchResult struct {
	Codec        string  `json:"codec"`
	Workers      int     `json:"workers"`
	InputBytes   int64   `json:"input_bytes"`
	ChunkBytes   int     `json:"chunk_bytes"`
	SerialMBps   float64 `json:"serial_mb_s"`
	ParallelMBps float64 `json:"parallel_mb_s"`
	Speedup      float64 `json:"speedup"`
}

// BenchReport is the full BENCH_compress.json document.
type BenchReport struct {
	// GOMAXPROCS records the parallelism available to the run; speedups are
	// only meaningful relative to it (a 1-CPU machine caps every speedup
	// at ~1.0 regardless of worker count).
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []BenchResult `json:"results"`
}

// Fill computes Speedup for every result that has both throughputs.
func (r *BenchReport) Fill() {
	for i := range r.Results {
		if s := r.Results[i].SerialMBps; s > 0 {
			r.Results[i].Speedup = r.Results[i].ParallelMBps / s
		}
	}
	sort.Slice(r.Results, func(i, j int) bool {
		a, b := &r.Results[i], &r.Results[j]
		if a.Codec != b.Codec {
			return a.Codec < b.Codec
		}
		return a.Workers < b.Workers
	})
}

// WriteBenchJSON fills derived fields and writes the report to path.
func WriteBenchJSON(path string, r *BenchReport) error {
	r.Fill()
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("stats: write bench report: %w", err)
	}
	return nil
}
