package stats

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Benchmark regression records: `make bench` writes BENCH_compress.json so
// throughput changes (serial vs parallel, per codec) are diffable across
// commits and machines. The schema is deliberately flat for jq-ability.

// BenchResult is one codec's serial-vs-parallel throughput comparison, in
// both directions: the *MBps fields are the compress side, the *DecodeMBps
// fields the decompress side of the same stream.
type BenchResult struct {
	Codec              string  `json:"codec"`
	Workers            int     `json:"workers"`
	InputBytes         int64   `json:"input_bytes"`
	ChunkBytes         int     `json:"chunk_bytes"`
	SerialMBps         float64 `json:"serial_mb_s"`
	ParallelMBps       float64 `json:"parallel_mb_s"`
	Speedup            float64 `json:"speedup"`
	SerialDecodeMBps   float64 `json:"serial_decode_mb_s,omitempty"`
	ParallelDecodeMBps float64 `json:"parallel_decode_mb_s,omitempty"`
	DecodeSpeedup      float64 `json:"decode_speedup,omitempty"`
}

// BenchReport is the full BENCH_compress.json document.
type BenchReport struct {
	// GOMAXPROCS records the parallelism available to the run; speedups are
	// only meaningful relative to it (a 1-CPU machine caps every speedup
	// at ~1.0 regardless of worker count).
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is runtime.NumCPU() on the measuring machine. GOMAXPROCS can be
	// lowered below it by the environment, so both are recorded: absolute
	// MB/s numbers are only comparable between runs on the same hardware.
	NumCPU int `json:"num_cpu"`
	// Note is a free-form environment annotation (e.g. "1-CPU CI container:
	// parallel speedups are ~1.0 by construction").
	Note    string        `json:"note,omitempty"`
	Results []BenchResult `json:"results"`
}

// Fill computes Speedup for every result that has both throughputs.
func (r *BenchReport) Fill() {
	for i := range r.Results {
		if s := r.Results[i].SerialMBps; s > 0 {
			r.Results[i].Speedup = r.Results[i].ParallelMBps / s
		}
		if s := r.Results[i].SerialDecodeMBps; s > 0 {
			r.Results[i].DecodeSpeedup = r.Results[i].ParallelDecodeMBps / s
		}
	}
	sort.Slice(r.Results, func(i, j int) bool {
		a, b := &r.Results[i], &r.Results[j]
		if a.Codec != b.Codec {
			return a.Codec < b.Codec
		}
		return a.Workers < b.Workers
	})
}

// RatioCell is one file x codec measurement in a RatioReport. Exactly one
// of Ratio/Error is meaningful: a failed cell carries the error string and
// a zero ratio so downstream tooling can both see the failure and skip the
// cell in aggregates.
type RatioCell struct {
	Codec  string  `json:"codec"`
	Ratio  float64 `json:"ratio,omitempty"`
	Detail string  `json:"detail,omitempty"` // e.g. the winning LC pipeline
	Error  string  `json:"error,omitempty"`
}

// RatioFile is one input file's row of codec cells.
type RatioFile struct {
	File      string      `json:"file"`
	SizeBytes int         `json:"size_bytes"`
	Cells     []RatioCell `json:"cells"`
}

// RatioReport is the machine-readable form of the compressbench table:
// per-file/per-codec compression ratios plus geometric means, the JSON
// counterpart of the fixed-width text table (as BenchReport is for the
// throughput benchmarks).
type RatioReport struct {
	Codecs   []string           `json:"codecs"`
	Files    []RatioFile        `json:"files"`
	GeoMeans map[string]float64 `json:"geomeans"`
	Errors   int                `json:"errors"`
}

// Finish computes GeoMeans over the error-free cells and the total error
// count. Call it once after all cells are recorded.
func (r *RatioReport) Finish() {
	byCodec := map[string][]float64{}
	r.Errors = 0
	for _, f := range r.Files {
		for _, c := range f.Cells {
			if c.Error != "" {
				r.Errors++
				continue
			}
			byCodec[c.Codec] = append(byCodec[c.Codec], c.Ratio)
		}
	}
	r.GeoMeans = make(map[string]float64, len(byCodec))
	for codec, ratios := range byCodec {
		r.GeoMeans[codec] = GeoMean(ratios)
	}
}

// WriteBenchJSON fills derived fields and writes the report to path.
func WriteBenchJSON(path string, r *BenchReport) error {
	r.Fill()
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("stats: write bench report: %w", err)
	}
	return nil
}
