package stats

import (
	"math"
	"math/bits"
	"time"
)

// LatencyHist is a log2-bucketed latency histogram: bucket i counts
// observations in (2^(i-1), 2^i] microseconds, with bucket 0 holding
// everything at or below 1µs and the last bucket everything above ~1193h.
// Power-of-two bounds keep Observe allocation-free and branch-cheap, which
// is what a per-request serving-path counter needs; quantiles are
// reconstructed by log-linear interpolation inside the winning bucket, so
// they carry at most one bucket (2x) of error — plenty for operational
// "did p99 double?" questions.
//
// The zero value is ready to use. LatencyHist is not concurrency-safe;
// callers that observe from multiple goroutines wrap it in a mutex (the
// server's metrics registry does).
type LatencyHist struct {
	counts [latencyBuckets]uint64
	total  uint64
	sum    time.Duration
}

// latencyBuckets spans 1µs .. 2^41µs (~25 days) in doublings.
const latencyBuckets = 42

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us - 1)) // ceil(log2(us)) for us >= 2
	if b >= latencyBuckets {
		return latencyBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)]++
	h.total++
	h.sum += d
}

// Count returns the number of observations.
func (h *LatencyHist) Count() uint64 { return h.total }

// Mean returns the arithmetic mean latency (0 with no observations).
func (h *LatencyHist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1), e.g. 0.5
// for the median and 0.99 for p99. With no observations it returns 0.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen < rank {
			continue
		}
		// Log-linear interpolation inside bucket i: (2^(i-1), 2^i] µs.
		hi := math.Pow(2, float64(i))
		lo := hi / 2
		if i == 0 {
			lo, hi = 0, 1
		}
		frac := 1 - float64(seen-rank)/float64(c)
		us := lo + (hi-lo)*frac
		return time.Duration(us * float64(time.Microsecond))
	}
	return h.sum // unreachable: total > 0 means some bucket trips the rank
}

// Snapshot returns the non-empty buckets as (upper bound, count) pairs for
// JSON export; upper bounds are in microseconds.
func (h *LatencyHist) Snapshot() []LatencyBucket {
	var out []LatencyBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		out = append(out, LatencyBucket{UpperMicros: uint64(1) << uint(i), Count: c})
	}
	return out
}

// LatencyBucket is one Snapshot entry.
type LatencyBucket struct {
	UpperMicros uint64 `json:"le_us"`
	Count       uint64 `json:"count"`
}
