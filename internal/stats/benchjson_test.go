package stats

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := &BenchReport{
		GOMAXPROCS: 4,
		Results: []BenchResult{
			{Codec: "zstd", Workers: 4, InputBytes: 1 << 22, ChunkBytes: 1 << 20, SerialMBps: 50, ParallelMBps: 150},
			{Codec: "gzip", Workers: 4, InputBytes: 1 << 22, ChunkBytes: 1 << 20, SerialMBps: 20, ParallelMBps: 60},
		},
	}
	if err := WriteBenchJSON(path, r); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 || back.GOMAXPROCS != 4 {
		t.Fatalf("roundtrip: %+v", back)
	}
	// Fill computed speedups and sorted by codec name.
	if back.Results[0].Codec != "gzip" || back.Results[1].Codec != "zstd" {
		t.Fatalf("not sorted: %+v", back.Results)
	}
	for _, res := range back.Results {
		if res.Speedup < 2.9 || res.Speedup > 3.1 {
			t.Fatalf("speedup not derived: %+v", res)
		}
	}
}

func TestWriteBenchJSONZeroSerial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := &BenchReport{Results: []BenchResult{{Codec: "xz", ParallelMBps: 10}}}
	if err := WriteBenchJSON(path, r); err != nil {
		t.Fatal(err)
	}
	if r.Results[0].Speedup != 0 {
		t.Fatalf("speedup with zero serial baseline should stay 0, got %g", r.Results[0].Speedup)
	}
}

func TestRatioReportFinish(t *testing.T) {
	r := &RatioReport{
		Codecs: []string{"xz", "zstd"},
		Files: []RatioFile{
			{File: "a.f32", SizeBytes: 100, Cells: []RatioCell{
				{Codec: "xz", Ratio: 2},
				{Codec: "zstd", Ratio: 8},
			}},
			{File: "b.f32", SizeBytes: 200, Cells: []RatioCell{
				{Codec: "xz", Ratio: 8},
				{Codec: "zstd", Error: "boom"},
			}},
		},
	}
	r.Finish()
	if r.Errors != 1 {
		t.Fatalf("errors = %d, want 1", r.Errors)
	}
	if got := r.GeoMeans["xz"]; math.Abs(got-4) > 1e-12 {
		t.Fatalf("xz geomean = %g, want 4", got)
	}
	// The errored cell is excluded, leaving the single good zstd ratio.
	if got := r.GeoMeans["zstd"]; math.Abs(got-8) > 1e-12 {
		t.Fatalf("zstd geomean = %g, want 8", got)
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back RatioReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Errors != 1 || len(back.Files) != 2 {
		t.Fatalf("roundtrip lost data: %+v", back)
	}
}
