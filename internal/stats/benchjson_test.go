package stats

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := &BenchReport{
		GOMAXPROCS: 4,
		Results: []BenchResult{
			{Codec: "zstd", Workers: 4, InputBytes: 1 << 22, ChunkBytes: 1 << 20, SerialMBps: 50, ParallelMBps: 150},
			{Codec: "gzip", Workers: 4, InputBytes: 1 << 22, ChunkBytes: 1 << 20, SerialMBps: 20, ParallelMBps: 60},
		},
	}
	if err := WriteBenchJSON(path, r); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 || back.GOMAXPROCS != 4 {
		t.Fatalf("roundtrip: %+v", back)
	}
	// Fill computed speedups and sorted by codec name.
	if back.Results[0].Codec != "gzip" || back.Results[1].Codec != "zstd" {
		t.Fatalf("not sorted: %+v", back.Results)
	}
	for _, res := range back.Results {
		if res.Speedup < 2.9 || res.Speedup > 3.1 {
			t.Fatalf("speedup not derived: %+v", res)
		}
	}
}

func TestWriteBenchJSONZeroSerial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := &BenchReport{Results: []BenchResult{{Codec: "xz", ParallelMBps: 10}}}
	if err := WriteBenchJSON(path, r); err != nil {
		t.Fatal(err)
	}
	if r.Results[0].Speedup != 0 {
		t.Fatalf("speedup with zero serial baseline should stay 0, got %g", r.Results[0].Speedup)
	}
}
