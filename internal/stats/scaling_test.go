package stats

import (
	"strings"
	"testing"
)

func scalingRow(codec string, workers int, serEnc, parEnc, serDec, parDec float64) BenchResult {
	return BenchResult{
		Codec: codec, Workers: workers,
		SerialMBps: serEnc, ParallelMBps: parEnc,
		SerialDecodeMBps: serDec, ParallelDecodeMBps: parDec,
	}
}

func TestCheckScalingPassesHealthyCurve(t *testing.T) {
	rep := &BenchReport{NumCPU: 4, Results: []BenchResult{
		scalingRow("xz", 1, 10, 9.8, 40, 39),
		scalingRow("xz", 2, 10, 18, 40, 41),
		scalingRow("xz", 4, 10, 33, 40, 42),
	}}
	if probs := CheckScaling(rep, 10); len(probs) != 0 {
		t.Errorf("healthy curve flagged: %v", probs)
	}
}

func TestCheckScalingFlagsParallelBelowSerial(t *testing.T) {
	rep := &BenchReport{NumCPU: 4, Results: []BenchResult{
		scalingRow("bzip2", 4, 10, 5, 40, 42),  // encode collapsed
		scalingRow("fpc32", 4, 10, 11, 40, 30), // decode collapsed
	}}
	probs := CheckScaling(rep, 10)
	if len(probs) != 2 {
		t.Fatalf("want 2 problems, got %d: %v", len(probs), probs)
	}
	joined := strings.Join(probs, "\n")
	for _, want := range []string{"bzip2 w=4", "parallel compress", "fpc32 w=4", "parallel decode"} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems missing %q:\n%s", want, joined)
		}
	}
}

func TestCheckScalingLenientOnOneCPU(t *testing.T) {
	// 20% dips both directions: noise on a 1-core box (serial fallback
	// measures the same code twice), regressions on real parallel hardware.
	rep := &BenchReport{NumCPU: 1, Results: []BenchResult{
		scalingRow("gzip", 4, 10, 8, 40, 32),
	}}
	if probs := CheckScaling(rep, 10); len(probs) != 0 {
		t.Errorf("1-CPU noise flagged: %v", probs)
	}
	rep.NumCPU = 4
	if probs := CheckScaling(rep, 10); len(probs) != 2 {
		t.Errorf("multi-CPU dips not both flagged: %v", probs)
	}
	// Past the widened bound, even a 1-CPU box fails: that is a broken
	// fallback, not noise.
	rep.NumCPU = 1
	rep.Results[0].ParallelDecodeMBps = 25
	if probs := CheckScaling(rep, 10); len(probs) != 1 {
		t.Errorf("1-CPU catastrophic decode dip not flagged: %v", probs)
	}
}

func TestCheckScalingRegressSkipsDifferentHardware(t *testing.T) {
	oldRep := &BenchReport{NumCPU: 8, Results: []BenchResult{scalingRow("xz", 4, 10, 35, 40, 44)}}
	newRep := &BenchReport{NumCPU: 4, Results: []BenchResult{scalingRow("xz", 4, 10, 20, 40, 41)}}
	probs, compared := CheckScalingRegress(oldRep, newRep, 10)
	if compared || probs != nil {
		t.Errorf("cross-hardware comparison not skipped: compared=%v probs=%v", compared, probs)
	}
}

func TestCheckScalingRegressSkipsOneCPU(t *testing.T) {
	// On one core the engine falls back to serial, so efficiency divides
	// noise by noise; a 20% "drop" there must not gate anything.
	oldRep := &BenchReport{NumCPU: 1, Results: []BenchResult{scalingRow("xz", 4, 10, 12, 40, 44)}}
	newRep := &BenchReport{NumCPU: 1, Results: []BenchResult{scalingRow("xz", 4, 10, 9.5, 40, 41)}}
	probs, compared := CheckScalingRegress(oldRep, newRep, 10)
	if compared || probs != nil {
		t.Errorf("1-CPU comparison not skipped: compared=%v probs=%v", compared, probs)
	}
}

func TestCheckScalingRegressFlagsEfficiencyDrop(t *testing.T) {
	oldRep := &BenchReport{NumCPU: 4, Results: []BenchResult{scalingRow("xz", 4, 10, 36, 40, 44)}}
	newRep := &BenchReport{NumCPU: 4, Results: []BenchResult{
		scalingRow("xz", 4, 10, 24, 40, 44),  // efficiency 0.9 -> 0.6
		scalingRow("new", 4, 10, 11, 40, 41), // only in new: skipped
	}}
	probs, compared := CheckScalingRegress(oldRep, newRep, 10)
	if !compared {
		t.Fatal("same-hardware comparison skipped")
	}
	if len(probs) != 1 || !strings.Contains(probs[0], "xz w=4") || !strings.Contains(probs[0], "compress") {
		t.Errorf("efficiency drop not flagged correctly: %v", probs)
	}
	// Within tolerance: no flag.
	newRep.Results[0].ParallelMBps = 34
	if probs, _ := CheckScalingRegress(oldRep, newRep, 10); len(probs) != 0 {
		t.Errorf("within-tolerance drift flagged: %v", probs)
	}
}
