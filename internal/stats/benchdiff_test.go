package stats

import (
	"path/filepath"
	"strings"
	"testing"
)

func benchReport(results ...BenchResult) *BenchReport {
	return &BenchReport{GOMAXPROCS: 1, NumCPU: 1, Results: results}
}

func TestDiffBenchRegression(t *testing.T) {
	oldRep := benchReport(
		BenchResult{Codec: "xz", Workers: 4, SerialMBps: 2.0, ParallelMBps: 2.0, SerialDecodeMBps: 10.0, ParallelDecodeMBps: 10.0},
		BenchResult{Codec: "lz4", Workers: 4, SerialMBps: 45.0, ParallelMBps: 44.0},
	)
	newRep := benchReport(
		BenchResult{Codec: "xz", Workers: 4, SerialMBps: 2.1, ParallelMBps: 2.1, SerialDecodeMBps: 21.0, ParallelDecodeMBps: 20.0},
		BenchResult{Codec: "lz4", Workers: 4, SerialMBps: 38.0, ParallelMBps: 44.5},
	)
	d := DiffBench(oldRep, newRep, 10)
	if len(d.Regressions) != 1 {
		t.Fatalf("regressions = %+v, want exactly the lz4 serial compress drop", d.Regressions)
	}
	r := d.Regressions[0]
	if r.Codec != "lz4" || r.Metric != "compress/serial" {
		t.Fatalf("wrong regression flagged: %+v", r)
	}
	if r.DeltaPct > -15 || r.DeltaPct < -16 {
		t.Fatalf("lz4 serial delta = %.2f%%, want about -15.6%%", r.DeltaPct)
	}
	// 6 metrics total: xz has all four, lz4 only the two compress sides.
	if len(d.Deltas) != 6 {
		t.Fatalf("got %d deltas, want 6: %+v", len(d.Deltas), d.Deltas)
	}
	if !strings.Contains(d.Table(), "<< regression") {
		t.Fatalf("table does not mark the regression:\n%s", d.Table())
	}
}

func TestDiffBenchWithinThreshold(t *testing.T) {
	oldRep := benchReport(BenchResult{Codec: "zstd", Workers: 1, SerialMBps: 10.0, ParallelMBps: 10.0})
	newRep := benchReport(BenchResult{Codec: "zstd", Workers: 1, SerialMBps: 9.2, ParallelMBps: 10.4})
	if d := DiffBench(oldRep, newRep, 10); len(d.Regressions) != 0 {
		t.Fatalf("-8%% flagged at 10%% threshold: %+v", d.Regressions)
	}
	if d := DiffBench(oldRep, newRep, 5); len(d.Regressions) != 1 {
		t.Fatal("-8% not flagged at 5% threshold")
	}
}

func TestDiffBenchDisjointPairs(t *testing.T) {
	oldRep := benchReport(BenchResult{Codec: "bzip2", Workers: 4, SerialMBps: 5})
	newRep := benchReport(BenchResult{Codec: "bzip2", Workers: 8, SerialMBps: 5})
	d := DiffBench(oldRep, newRep, 10)
	if len(d.Deltas) != 0 || len(d.Regressions) != 0 {
		t.Fatalf("disjoint pairs produced deltas: %+v", d)
	}
	if len(d.OnlyOld) != 1 || len(d.OnlyNew) != 1 {
		t.Fatalf("missing-pair accounting wrong: %+v", d)
	}
}

func TestBenchJSONRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep := benchReport(BenchResult{Codec: "gzip", Workers: 2, SerialMBps: 40, ParallelMBps: 41})
	if err := WriteBenchJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0].Codec != "gzip" || back.Results[0].SerialMBps != 40 {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	if back.Results[0].Speedup == 0 {
		t.Fatal("Fill did not compute speedup before writing")
	}
}
