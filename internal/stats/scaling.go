package stats

import (
	"fmt"
	"sort"
)

// Per-core scaling gates over BenchReport documents: the analysis half of
// `make bench-scaling` (cmd/benchdiff -scaling is a thin CLI over these).

// CheckScaling validates a single report's intra-run invariant: the
// parallel engine must never fall below the serial path by more than
// tolPct percent at any worker count.
//
// On multi-core hardware both directions are held to tolPct strictly — the
// read-ahead reader's whole reason to exist is "never slower than serial".
// A 1-CPU machine gets a wider margin (2.5x tolPct, at least 25%) in both
// directions: the engine falls back to the serial path there, so each
// comparison measures the same code twice and the delta is pure
// scheduler/cache noise, which on a shared 1-core CI runner routinely
// exceeds a strict threshold even with the sweep's drift-cancelling
// paired measurement.
func CheckScaling(r *BenchReport, tolPct float64) []string {
	if tolPct <= 0 {
		tolPct = 10
	}
	encTol, decTol := tolPct, tolPct
	if r.NumCPU == 1 {
		encTol = tolPct * 2.5
		if encTol < 25 {
			encTol = 25
		}
		decTol = encTol
	}
	var problems []string
	for _, res := range r.Results {
		if res.SerialMBps > 0 && res.ParallelMBps > 0 &&
			res.ParallelMBps < res.SerialMBps*(1-encTol/100) {
			problems = append(problems, fmt.Sprintf(
				"%s w=%d: parallel compress %.2f MB/s is %.1f%% below serial %.2f MB/s (tol %.0f%%)",
				res.Codec, res.Workers, res.ParallelMBps,
				(1-res.ParallelMBps/res.SerialMBps)*100, res.SerialMBps, encTol))
		}
		if res.SerialDecodeMBps > 0 && res.ParallelDecodeMBps > 0 &&
			res.ParallelDecodeMBps < res.SerialDecodeMBps*(1-decTol/100) {
			problems = append(problems, fmt.Sprintf(
				"%s w=%d: parallel decode %.2f MB/s is %.1f%% below serial %.2f MB/s (tol %.0f%%)",
				res.Codec, res.Workers, res.ParallelDecodeMBps,
				(1-res.ParallelDecodeMBps/res.SerialDecodeMBps)*100, res.SerialDecodeMBps, decTol))
		}
	}
	sort.Strings(problems)
	return problems
}

// CheckScalingRegress compares scaling efficiency — speedup divided by
// worker count — between a checked-in baseline and a new report. It
// returns the regressions and whether a comparison happened at all:
// efficiency curves are only meaningful between runs on the same core
// count, so when the two reports disagree on NumCPU the check is skipped
// (compared == false) rather than failed — a laptop run must not be gated
// against a CI-box baseline. On a 1-CPU machine the comparison is skipped
// for the same reason CheckScaling loosens its encode bound there: the
// engine falls back to the serial path, so "efficiency" divides one noisy
// measurement of the serial code by another and regressions in it are
// fiction. Pairs present in only one report are skipped, matching
// benchdiff's add-a-codec-without-rewriting-history policy.
func CheckScalingRegress(oldRep, newRep *BenchReport, tolPct float64) (problems []string, compared bool) {
	if oldRep.NumCPU != newRep.NumCPU || newRep.NumCPU == 1 {
		return nil, false
	}
	if tolPct <= 0 {
		tolPct = 10
	}
	oldBy := map[benchKey]BenchResult{}
	for _, r := range oldRep.Results {
		oldBy[benchKey{r.Codec, r.Workers}] = r
	}
	for _, nr := range newRep.Results {
		or, ok := oldBy[benchKey{nr.Codec, nr.Workers}]
		if !ok {
			continue
		}
		for _, m := range []struct {
			name           string
			oldSer, oldPar float64
			newSer, newPar float64
		}{
			{"compress", or.SerialMBps, or.ParallelMBps, nr.SerialMBps, nr.ParallelMBps},
			{"decode", or.SerialDecodeMBps, or.ParallelDecodeMBps, nr.SerialDecodeMBps, nr.ParallelDecodeMBps},
		} {
			if m.oldSer <= 0 || m.oldPar <= 0 || m.newSer <= 0 || m.newPar <= 0 {
				continue
			}
			oldEff := m.oldPar / m.oldSer / float64(nr.Workers)
			newEff := m.newPar / m.newSer / float64(nr.Workers)
			if newEff < oldEff*(1-tolPct/100) {
				problems = append(problems, fmt.Sprintf(
					"%s w=%d: %s scaling efficiency %.3f is %.1f%% below baseline %.3f (tol %.0f%%)",
					nr.Codec, nr.Workers, m.name, newEff, (1-newEff/oldEff)*100, oldEff, tolPct))
			}
		}
	}
	sort.Strings(problems)
	return problems, true
}
