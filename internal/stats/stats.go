// Package stats provides the summary statistics and text rendering the
// study reports: geometric means (the paper's aggregation of choice, after
// Fleming & Wallace), ratio deltas, and fixed-width result tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GeoMean returns the geometric mean of xs. It returns 0 if xs is empty or
// any value is non-positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// PctDelta returns the percentage change from base to v: +2.0 means v is 2%
// above base.
func PctDelta(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return (v/base - 1) * 100
}

// Table renders fixed-width text tables for cmd output and EXPERIMENTS.md.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bar renders a horizontal ASCII bar chart row for figure-style output.
func Bar(label string, value, maxValue float64, width int) string {
	if width <= 0 {
		width = 50
	}
	n := 0
	if maxValue > 0 {
		n = int(value / maxValue * float64(width))
	}
	if n > width {
		n = width
	}
	return fmt.Sprintf("%-8s |%-*s| %.3f", label, width, strings.Repeat("#", n), value)
}

// SortedKeys returns map keys in sorted order for deterministic iteration.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
