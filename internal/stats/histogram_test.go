package stats

import (
	"math/rand"
	"testing"
	"time"
)

func TestLatencyHistBuckets(t *testing.T) {
	var h LatencyHist
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 0}, // sub-µs resolution truncates
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10}, // 1024 µs -> bucket 10
		{time.Second, 20},      // 1e6 µs -> 2^20 = 1048576 >= 1e6
		{400 * time.Hour, latencyBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	h.Observe(-time.Second) // clamps to 0, must not panic or go negative
	if h.Count() != 1 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 1000 samples uniform in [1ms, 2ms): p50 should land within a factor
	// of two of 1.5ms and p99 below 4ms (one bucket of slack each way).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond + time.Duration(rng.Int63n(int64(time.Millisecond))))
	}
	if got := h.Quantile(0.5); got < 750*time.Microsecond || got > 3*time.Millisecond {
		t.Errorf("p50 = %v, want within 2x of 1.5ms", got)
	}
	if got := h.Quantile(0.99); got < time.Millisecond || got > 4*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := h.Quantile(1); got < h.Quantile(0.5) {
		t.Errorf("p100 %v below p50 %v", got, h.Quantile(0.5))
	}
	if mean := h.Mean(); mean < time.Millisecond || mean > 2*time.Millisecond {
		t.Errorf("mean = %v, want ~1.5ms exactly (mean is not bucketed)", mean)
	}
	// Quantiles are monotone in q.
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%g) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestLatencyHistSnapshot(t *testing.T) {
	var h LatencyHist
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(900 * time.Microsecond)
	snap := h.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 populated buckets, got %v", snap)
	}
	if snap[0].UpperMicros != 4 || snap[0].Count != 2 {
		t.Errorf("bucket 0: %+v", snap[0])
	}
	if snap[1].UpperMicros != 1024 || snap[1].Count != 1 {
		t.Errorf("bucket 1: %+v", snap[1])
	}
}
