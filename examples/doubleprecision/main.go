// Doubleprecision: the paper's future-work extension to 64-bit data.
// Builds a double-precision field, re-encodes it as posit<64,3>, and
// compares compressibility of the two encodings — the same experiment as
// Figures 3/4, one word size up.
//
//	go run ./examples/doubleprecision
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/posit"
	"positbench/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 16
	values := make([]float64, n)
	for i := range values {
		v := 1e5 + 4e4*math.Sin(float64(i)/3000) + 50*rng.NormFloat64()
		// Model output with ~30 significant mantissa bits.
		values[i] = math.Float64frombits(math.Float64bits(v) &^ (1<<22 - 1))
	}

	cfg := posit.Config{N: 64, ES: 3}
	words := cfg.FromFloat64Slice(nil, values)
	st := cfg.RoundtripStats64(values)
	fmt.Printf("%s conversion: %.2f%% exact roundtrips over %d values\n",
		cfg, 100*float64(st.Exact)/float64(st.Total), st.Total)

	ieeeBytes := posit.EncodeFloat64LE(values)
	positBytes := posit.EncodeWords64LE(words)
	t := stats.NewTable("Codec", "float64 ratio", "posit<64,3> ratio", "delta")
	for _, codec := range all.Codecs() {
		ri := ratio(codec, ieeeBytes)
		rp := ratio(codec, positBytes)
		t.AddRow(codec.Name(), fmt.Sprintf("%.3f", ri), fmt.Sprintf("%.3f", rp),
			fmt.Sprintf("%+.2f%%", stats.PctDelta(ri, rp)))
	}
	fmt.Print(t.String())
}

func ratio(c compress.Codec, data []byte) float64 {
	n, err := compress.Roundtrip(c, data)
	if err != nil {
		log.Fatal(err)
	}
	return compress.Ratio(len(data), n)
}
