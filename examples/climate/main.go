// Climate: the paper's CESM scenario end-to-end. Generates the two
// CESM-like inputs (aerosol optical depth with huge outliers, sea-ice
// fraction with zero oceans), shows their exponent profiles (Figure 5
// style), converts to posit<32,3> and posit<32,2>, and compares all five
// general-purpose codecs on both encodings.
//
//	go run ./examples/climate
package main

import (
	"fmt"
	"log"

	"positbench/internal/compress"
	"positbench/internal/compress/all"
	"positbench/internal/ieee"
	"positbench/internal/posit"
	"positbench/internal/sdrbench"
	"positbench/internal/stats"
)

func main() {
	const n = 1 << 17
	for _, name := range []string{"AEROD_v_1_1800_3600.f32", "ICEFRAC_1_1800_3600.f32"} {
		spec, err := sdrbench.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		values := spec.Generate(n)

		fmt.Printf("=== %s (%s) ===\n", spec.Name, spec.Dataset)
		var h ieee.Histogram
		h.AddSlice(values)
		fmt.Printf("exponent mode %d; value classes: %+v\n", h.Mode(), ieee.Summarize(values))

		// es=3 vs es=2: why the paper picked posit<32,3>.
		for _, cfg := range []posit.Config{posit.Posit32e3, posit.Posit32} {
			st := cfg.RoundtripStats(values)
			fmt.Printf("%s: %.2f%% exact roundtrips\n", cfg, st.PrecisePct())
		}

		ieeeBytes := posit.EncodeFloat32LE(values)
		positBytes := posit.EncodeWordsLE(posit.Posit32e3.FromFloat32Slice(nil, values))
		t := stats.NewTable("Codec", "IEEE ratio", "posit ratio", "delta")
		for _, codec := range all.Codecs() {
			ri := ratio(codec, ieeeBytes)
			rp := ratio(codec, positBytes)
			t.AddRow(codec.Name(), fmt.Sprintf("%.3f", ri), fmt.Sprintf("%.3f", rp),
				fmt.Sprintf("%+.2f%%", stats.PctDelta(ri, rp)))
		}
		fmt.Print(t.String())
		fmt.Println()
	}
}

func ratio(c compress.Codec, data []byte) float64 {
	n, err := compress.Roundtrip(c, data)
	if err != nil {
		log.Fatal(err)
	}
	return compress.Ratio(len(data), n)
}
