// Cosmology: HACC-like particle data is nearly incompressible for
// general-purpose codecs; this example runs the LC pipeline search on it
// (and on its posit re-encoding) to find the custom transform pipeline the
// framework synthesizes — the paper's Figure 6 workflow for one file.
//
//	go run ./examples/cosmology
package main

import (
	"fmt"
	"log"

	"positbench/internal/compress"
	"positbench/internal/compress/xzc"
	"positbench/internal/lc"
	"positbench/internal/posit"
	"positbench/internal/sdrbench"
)

func main() {
	const n = 1 << 16
	spec, err := sdrbench.ByName("vx.f32")
	if err != nil {
		log.Fatal(err)
	}
	values := spec.Generate(n)
	ieeeBytes := posit.EncodeFloat32LE(values)
	positBytes := posit.EncodeWordsLE(posit.Posit32e3.FromFloat32Slice(nil, values))

	fmt.Printf("searching %d LC pipelines on %s (%d bytes)\n",
		lc.PipelineCount(), spec.Name, len(ieeeBytes))
	for _, enc := range []struct {
		name string
		data []byte
	}{{"ieee", ieeeBytes}, {"posit", positBytes}} {
		results, err := lc.SearchAll(enc.data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s encoding, top 5 pipelines:\n", enc.name)
		for _, r := range results[:5] {
			fmt.Printf("  %-22s %7d bytes  ratio %.3f\n",
				r.Names[0]+"|"+r.Names[1]+"|"+r.Names[2], r.Size, r.Ratio)
		}
		// The best pipeline is a full codec: self-describing and lossless.
		pipe, err := results[0].Pipeline()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := compress.Roundtrip(lc.NewCodec(pipe), enc.data); err != nil {
			log.Fatal(err)
		}
		xzLen, err := compress.Roundtrip(xzc.New(), enc.data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  best LC pipeline verified lossless; xz ratio for comparison: %.3f\n",
			compress.Ratio(len(enc.data), xzLen))
	}
}
