// Accuracy: why one would store posit data at all. Runs the numeric
// workloads the posit literature highlights — long summations and dot
// products near the posit "golden zone" — in float32, posit<32,2>, and
// posit<32,3> arithmetic, comparing against a float64 reference.
//
//	go run ./examples/accuracy
package main

import (
	"fmt"
	"math"
	"math/rand"

	"positbench/internal/posit"
	"positbench/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	const n = 1 << 16

	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64()*2 - 1 // values in [-1, 1): posits' best range
		b[i] = rng.Float64()*2 - 1
	}

	t := stats.NewTable("Workload", "float32 rel err", "posit<32,2> rel err", "posit<32,3> rel err")
	t.AddRow("sum", relErr(sumF32(a), sumRef(a)),
		relErr(sumPosit(posit.Posit32, a), sumRef(a)),
		relErr(sumPosit(posit.Posit32e3, a), sumRef(a)))
	t.AddRow("sum (quire)", "-",
		relErr(sumQuire(posit.Posit32, a), sumRef(a)),
		relErr(sumQuire(posit.Posit32e3, a), sumRef(a)))
	t.AddRow("dot product", relErr(dotF32(a, b), dotRef(a, b)),
		relErr(dotPosit(posit.Posit32, a, b), dotRef(a, b)),
		relErr(dotPosit(posit.Posit32e3, a, b), dotRef(a, b)))
	t.AddRow("dot product (quire)", "-",
		relErr(dotQuire(posit.Posit32, a, b), dotRef(a, b)),
		relErr(dotQuire(posit.Posit32e3, a, b), dotRef(a, b)))
	// Kahan-style cancellation stress: alternating large/small terms.
	c := make([]float64, n)
	for i := range c {
		if i%2 == 0 {
			c[i] = 1e4 + rng.Float64()
		} else {
			c[i] = -1e4 + rng.Float64()
		}
	}
	t.AddRow("cancellation sum", relErr(sumF32(c), sumRef(c)),
		relErr(sumPosit(posit.Posit32, c), sumRef(c)),
		relErr(sumPosit(posit.Posit32e3, c), sumRef(c)))
	fmt.Print(t.String())
	fmt.Println("\n(quire rows accumulate exactly and round once at the end —")
	fmt.Println(" the error left is pure input-conversion error.)")
	fmt.Println("\n(posit<32,2> concentrates precision near ±1, which is why the")
	fmt.Println(" literature reports accuracy wins there; es=3 trades a little of")
	fmt.Println(" that for the dynamic range the compression study needs.)")
}

func sumRef(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func sumF32(xs []float64) float64 {
	var s float32
	for _, x := range xs {
		s += float32(x)
	}
	return float64(s)
}

func sumPosit(cfg posit.Config, xs []float64) float64 {
	acc := cfg.Zero()
	for _, x := range xs {
		acc = cfg.Add(acc, cfg.FromFloat64(x))
	}
	return cfg.ToFloat64(acc)
}

func dotRef(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func dotF32(a, b []float64) float64 {
	var s float32
	for i := range a {
		s += float32(a[i]) * float32(b[i])
	}
	return float64(s)
}

// sumQuire accumulates through the quire: exact until the final rounding.
func sumQuire(cfg posit.Config, xs []float64) float64 {
	q := posit.NewQuire(cfg)
	for _, x := range xs {
		q.Add(cfg.FromFloat64(x))
	}
	return cfg.ToFloat64(q.Posit())
}

// dotQuire is the fused dot product: one rounding total.
func dotQuire(cfg posit.Config, a, b []float64) float64 {
	q := posit.NewQuire(cfg)
	for i := range a {
		q.AddProduct(cfg.FromFloat64(a[i]), cfg.FromFloat64(b[i]))
	}
	return cfg.ToFloat64(q.Posit())
}

func dotPosit(cfg posit.Config, a, b []float64) float64 {
	acc := cfg.Zero()
	for i := range a {
		acc = cfg.Add(acc, cfg.Mul(cfg.FromFloat64(a[i]), cfg.FromFloat64(b[i])))
	}
	return cfg.ToFloat64(acc)
}

func relErr(got, want float64) string {
	if want == 0 {
		return fmt.Sprintf("%.3g (abs)", math.Abs(got))
	}
	return fmt.Sprintf("%.3g", math.Abs((got-want)/want))
}
