// Quickstart: convert a float32 buffer to posit<32,3>, compress both
// representations with the study's strongest codec, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"positbench/internal/compress"
	"positbench/internal/compress/xzc"
	"positbench/internal/posit"
)

func main() {
	// A smooth "sensor signal": values near 1.0, the regime posits love.
	values := make([]float32, 100_000)
	for i := range values {
		values[i] = float32(1 + 0.5*math.Sin(float64(i)/500))
	}

	// 1. Re-encode as posit<32,3> (the paper's configuration).
	cfg := posit.Posit32e3
	words := cfg.FromFloat32Slice(nil, values)
	st := cfg.RoundtripStats(values)
	fmt.Printf("converted %d values to %s: %.2f%% roundtrip exactly\n",
		st.Total, cfg, st.PrecisePct())

	// 2. Serialize both encodings; the files are the same size.
	ieeeBytes := posit.EncodeFloat32LE(values)
	positBytes := posit.EncodeWordsLE(words)

	// 3. Compress both with the xz-class codec.
	codec := xzc.New()
	for _, enc := range []struct {
		name string
		data []byte
	}{{"ieee", ieeeBytes}, {"posit", positBytes}} {
		n, err := compress.Roundtrip(codec, enc.data) // also verifies losslessness
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %8d -> %8d bytes (ratio %.3f)\n",
			enc.name, len(enc.data), n, compress.Ratio(len(enc.data), n))
	}

	// 4. Posit bits round-trip through float64 exactly (n <= 32), so the
	// data can come back whenever IEEE consumers need it.
	back := cfg.ToFloat32Slice(nil, words)
	diff := 0
	for i := range values {
		if back[i] != values[i] {
			diff++
		}
	}
	fmt.Printf("values changed by storing as posit: %d\n", diff)
}
